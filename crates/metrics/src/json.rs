//! A tiny deterministic JSON document model and serializer.
//!
//! The benchmark reporter's whole value is *diffability*: two runs of the
//! same flow must serialize byte-identically except for the wall-time
//! fields, so `BENCH_*.json` files can be compared across PRs with plain
//! `diff`. A general-purpose serializer (serde) would also pull in the
//! first external dependency of the workspace. This module instead keeps a
//! document model whose serialization is fully specified:
//!
//! * object keys keep **insertion order** (no hashing, no sorting);
//! * integers print as decimal with no sign-normalization surprises;
//! * floats print via Rust's shortest-round-trip [`Display`], which is
//!   deterministic for a given value; non-finite floats become `null`;
//! * strings escape `"` `\` and all control characters, nothing else.
//!
//! [`Display`]: std::fmt::Display

use std::fmt;

/// A JSON value with deterministic serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (covers every counter in the reporter).
    Int(i64),
    /// A float; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object whose keys serialize in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object builder; chain [`Json::field`] to populate.
    pub fn obj() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends a key/value pair (objects only; panics otherwise — the
    /// builder is for literal construction, where that is a programming
    /// error, not data).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        assert!(matches!(self, Json::Object(_)), "Json::field on a non-object");
        if let Json::Object(fields) = &mut self {
            fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Parses a JSON document (the inverse of [`Json::render`]).
    ///
    /// Supports exactly the dialect this module emits — which is standard
    /// JSON minus exotic escapes: objects, arrays, strings with `\" \\ \/
    /// \n \t \r \b \f \uXXXX` escapes, integers, floats, `true`/`false`/
    /// `null`. Numbers with a fraction or exponent parse as
    /// [`Json::Float`], everything else as [`Json::Int`]. Object keys keep
    /// document order. Trailing garbage after the top-level value is an
    /// error.
    ///
    /// This is what lets `dpmc bench --compare` read a committed
    /// `BENCH_*.json` baseline back without taking a serde dependency.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object field lookup by key (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is a [`Json::Int`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value of an [`Json::Int`] or [`Json::Float`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is a [`Json::Array`].
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in document order, if this is a [`Json::Object`].
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Serializes with newlines and two-space indentation — the layout
    /// used for committed `BENCH_*.json` files so diffs are per-field.
    pub fn render_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::Float(v) if !v.is_finite() => out.push_str("null"),
            Json::Float(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, k| {
                    items[k].write(out, indent, depth + 1);
                });
            }
            Json::Object(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, k| {
                    write_escaped(out, &fields[k].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[k].1.write(out, indent, depth + 1);
                });
            }
        }
    }
}

/// Shared array/object layout: one element per line when pretty.
fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut elem: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for k in 0..len {
        if k > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        elem(out, k);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`Json::parse`]: what went wrong and at which byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Recursive-descent parser over the input bytes (JSON structure is pure
/// ASCII; multi-byte UTF-8 only ever appears inside strings, where the
/// bytes are passed through verbatim).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => s.push(self.unicode_escape()?),
                        _ => return Err(self.err("unsupported string escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one whole UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// `\uXXXX`, including surrogate pairs for astral-plane characters.
    fn unicode_escape(&mut self) -> Result<char, JsonParseError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self.peek().and_then(|c| (c as char).to_digit(16));
            match d {
                Some(d) => {
                    v = v * 16 + d;
                    self.pos += 1;
                }
                None => return Err(self.err("expected four hex digits after \\u")),
            }
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>().map(Json::Float).map_err(|_| self.err("malformed number"))
        } else {
            text.parse::<i64>().map(Json::Int).map_err(|_| self.err("malformed integer"))
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i64)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i64)
    }
}

impl From<u128> for Json {
    fn from(v: u128) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let doc = Json::obj()
            .field("name", "fig3")
            .field("ok", true)
            .field("count", 3usize)
            .field("delay", 4.25)
            .field("list", vec![Json::Int(1), Json::Int(2)]);
        assert_eq!(
            doc.render(),
            r#"{"name":"fig3","ok":true,"count":3,"delay":4.25,"list":[1,2]}"#
        );
        let pretty = doc.render_pretty();
        assert!(pretty.starts_with("{\n  \"name\": \"fig3\",\n"));
        assert!(pretty.ends_with("}\n"));
        assert!(pretty.contains("  \"list\": [\n    1,\n    2\n  ]"));
    }

    #[test]
    fn key_order_is_insertion_order() {
        let a = Json::obj().field("z", 1usize).field("a", 2usize).render();
        assert_eq!(a, r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn escapes_strings_and_handles_non_finite() {
        let doc = Json::obj().field("s", "a\"b\\c\nd\u{1}").field("bad", f64::NAN);
        assert_eq!(doc.render(), "{\"s\":\"a\\\"b\\\\c\\nd\\u0001\",\"bad\":null}");
    }

    #[test]
    fn empty_containers_stay_on_one_line() {
        let doc = Json::obj().field("a", Json::Array(vec![])).field("o", Json::obj());
        assert_eq!(doc.render_pretty(), "{\n  \"a\": [],\n  \"o\": {}\n}\n");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::obj()
            .field("name", "fig3")
            .field("ok", true)
            .field("none", Json::Null)
            .field("count", 3usize)
            .field("neg", -17i64)
            .field("delay", 4.25)
            .field("text", "a\"b\\c\nd\u{1}é")
            .field("list", vec![Json::Int(1), Json::obj().field("k", "v")])
            .field("empty", Json::Array(vec![]));
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
        assert_eq!(Json::parse(&doc.render_pretty()).unwrap(), doc);
    }

    #[test]
    fn parse_distinguishes_int_and_float() {
        assert_eq!(Json::parse("7").unwrap(), Json::Int(7));
        assert_eq!(Json::parse("7.0").unwrap(), Json::Float(7.0));
        assert_eq!(Json::parse("-2e3").unwrap(), Json::Float(-2000.0));
    }

    #[test]
    fn parse_handles_unicode_escapes() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated", "{'a':1}"] {
            assert!(Json::parse(bad).is_err(), "expected parse failure for {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let doc = Json::parse(r#"{"a": {"b": [1, 2.5, "x"]}, "c": true}"#).unwrap();
        let list = doc.get("a").and_then(|a| a.get("b")).and_then(Json::as_array).unwrap();
        assert_eq!(list[0].as_i64(), Some(1));
        assert_eq!(list[1].as_f64(), Some(2.5));
        assert_eq!(list[2].as_str(), Some("x"));
        assert_eq!(doc.as_object().unwrap().len(), 2);
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rendering_is_reproducible() {
        let build = || {
            Json::obj()
                .field("f", 1.0 / 3.0)
                .field("neg", -42i64)
                .field("nested", Json::obj().field("k", "v"))
        };
        assert_eq!(build().render_pretty(), build().render_pretty());
    }
}
