//! The signed-interval lattice over `w`-bit words.
//!
//! An [`Interval`] bounds the **signed interpretation** of a signal's
//! `w`-bit word: `lo <= to_signed(word) <= hi`. Arithmetic transfers are
//! computed in unbounded precision (`i128`) and kept only when the exact
//! result provably fits the node's signed range — i.e. when the wrapping
//! hardware operator cannot wrap — otherwise the transfer falls back to the
//! full range of the width. Widths beyond [`Interval::MAX_WIDTH`] are not
//! tracked (the known-bits half of the product carries on alone).

use dp_bitvec::BitVec;

/// Inclusive bounds on the signed interpretation of a `w`-bit word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest possible signed value.
    pub lo: i128,
    /// Largest possible signed value.
    pub hi: i128,
}

impl Interval {
    /// Widest signal width for which intervals are tracked. Chosen so every
    /// representable value and every add/sub endpoint stays inside `i128`.
    pub const MAX_WIDTH: usize = 120;

    /// The full signed range of a `width`-bit word, or `None` when the
    /// width is beyond [`Interval::MAX_WIDTH`].
    pub fn full(width: usize) -> Option<Interval> {
        if width == 0 || width > Interval::MAX_WIDTH {
            return None;
        }
        let half = 1i128 << (width - 1);
        Some(Interval { lo: -half, hi: half - 1 })
    }

    /// The singleton interval for a constant word.
    pub fn constant(value: &BitVec) -> Option<Interval> {
        if value.width() > Interval::MAX_WIDTH {
            return None;
        }
        let v = value.to_i128()?;
        Some(Interval { lo: v, hi: v })
    }

    /// Whether the signed interpretation of `value` lies in the bounds.
    pub fn contains(&self, value: &BitVec) -> bool {
        match value.to_i128() {
            Some(v) => self.lo <= v && v <= self.hi,
            None => false,
        }
    }

    /// Whether the bounds lie within the signed range of a `width`-bit
    /// word (so a wrapping operator producing a value in these bounds
    /// cannot actually have wrapped).
    pub fn fits_signed(&self, width: usize) -> bool {
        match Interval::full(width) {
            Some(full) => full.lo <= self.lo && self.hi <= full.hi,
            None => false,
        }
    }

    /// Least upper bound.
    pub fn join(&self, other: &Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Intersection; `None` when the bounds are contradictory.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// The unsigned reading of the bounds, given they describe a
    /// `width`-bit word: exact when the sign is determined, else the full
    /// unsigned span.
    pub fn to_unsigned(&self, width: usize) -> Option<Interval> {
        if width > Interval::MAX_WIDTH {
            return None;
        }
        let wrap = 1i128 << width;
        if self.lo >= 0 {
            Some(*self)
        } else if self.hi < 0 {
            Some(Interval { lo: self.lo + wrap, hi: self.hi + wrap })
        } else {
            Some(Interval { lo: 0, hi: wrap - 1 })
        }
    }

    /// Exact interval addition (`i128` cannot overflow at tracked widths).
    pub fn add(&self, rhs: &Interval) -> Interval {
        Interval { lo: self.lo + rhs.lo, hi: self.hi + rhs.hi }
    }

    /// Exact interval subtraction.
    pub fn sub(&self, rhs: &Interval) -> Interval {
        Interval { lo: self.lo - rhs.hi, hi: self.hi - rhs.lo }
    }

    /// Exact interval negation.
    pub fn neg(&self) -> Interval {
        Interval { lo: -self.hi, hi: -self.lo }
    }

    /// Interval multiplication; `None` when an endpoint product overflows
    /// `i128`.
    pub fn mul(&self, rhs: &Interval) -> Option<Interval> {
        let mut lo = i128::MAX;
        let mut hi = i128::MIN;
        for a in [self.lo, self.hi] {
            for b in [rhs.lo, rhs.hi] {
                let p = a.checked_mul(b)?;
                lo = lo.min(p);
                hi = hi.max(p);
            }
        }
        Some(Interval { lo, hi })
    }

    /// Interval left shift; `None` on overflow.
    pub fn shl(&self, amount: usize) -> Option<Interval> {
        if amount >= 127 {
            return None;
        }
        let f = 1i128.checked_shl(amount as u32)?;
        Some(Interval { lo: self.lo.checked_mul(f)?, hi: self.hi.checked_mul(f)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_range_and_fits() {
        let f = Interval::full(4).unwrap();
        assert_eq!((f.lo, f.hi), (-8, 7));
        assert!(f.fits_signed(4));
        assert!(!Interval { lo: -8, hi: 8 }.fits_signed(4));
        assert!(Interval::full(0).is_none());
        assert!(Interval::full(Interval::MAX_WIDTH + 1).is_none());
    }

    #[test]
    fn constant_and_contains() {
        let c = Interval::constant(&BitVec::from_i64(6, -13)).unwrap();
        assert_eq!((c.lo, c.hi), (-13, -13));
        assert!(c.contains(&BitVec::from_i64(6, -13)));
        assert!(!c.contains(&BitVec::from_i64(6, -12)));
    }

    #[test]
    fn arithmetic_exhaustive_soundness() {
        // All sub-intervals of the 4-bit signed range, all member pairs.
        let w = 4;
        let mut ivs = Vec::new();
        for lo in -8i128..8 {
            for hi in lo..8 {
                ivs.push(Interval { lo, hi });
            }
        }
        for a in &ivs {
            for b in &ivs {
                let sum = a.add(b);
                let diff = a.sub(b);
                let prod = a.mul(b).unwrap();
                for va in a.lo..=a.hi {
                    for vb in b.lo..=b.hi {
                        assert!(sum.lo <= va + vb && va + vb <= sum.hi);
                        assert!(diff.lo <= va - vb && va - vb <= diff.hi);
                        assert!(prod.lo <= va * vb && va * vb <= prod.hi);
                    }
                }
                let _ = w;
            }
        }
    }

    #[test]
    fn unsigned_reading() {
        let neg = Interval { lo: -3, hi: -1 }.to_unsigned(4).unwrap();
        assert_eq!((neg.lo, neg.hi), (13, 15));
        let pos = Interval { lo: 2, hi: 5 }.to_unsigned(4).unwrap();
        assert_eq!((pos.lo, pos.hi), (2, 5));
        let mixed = Interval { lo: -1, hi: 1 }.to_unsigned(4).unwrap();
        assert_eq!((mixed.lo, mixed.hi), (0, 15));
    }

    #[test]
    fn shl_scales() {
        let s = Interval { lo: -3, hi: 5 }.shl(3).unwrap();
        assert_eq!((s.lo, s.hi), (-24, 40));
        assert!(Interval { lo: 1, hi: 1 }.shl(130).is_none());
    }
}
