#!/usr/bin/env bash
# Full local gate: everything CI would run, in the order that fails fastest.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo test (verify features)"
cargo test -q -p dp-synth --features verify
cargo test -q -p dp-analysis --features verify

echo "==> cargo test (fault-inject features)"
cargo test -q -p dp-synth --features verify,fault-inject
cargo test -q -p dp-fault

echo "==> cargo doc (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo test --doc"
cargo test -q --doc --workspace

echo "==> cargo build --examples"
cargo build --workspace --examples

echo "==> bitvec differential suite (tiered BitVec vs RefBitVec oracle)"
cargo test -q -p dp-bitvec --test differential
cargo test -q -p dp-bitvec --test alloc

echo "==> criterion smoke (bitvec fast path benches compile and run)"
cargo bench -p dp-bench --bench bitvec > /dev/null

echo "==> criterion smoke (netlist fold/sweep hot path)"
cargo bench -p dp-bench --bench fold > /dev/null

echo "==> dpmc bench --compare (QoR/provenance exact, timing within 400%)"
cargo run --release --bin dpmc -- bench --jobs 1 --compare BENCH_pr9.json --max-regress-pct 400

echo "==> S10k wall-time budget (full flow x2 strategies + verify under 30s)"
# The S10k scaling member is not in the committed baseline (timing there
# is gated per-design); this is a coarse absolute backstop against the
# pre-PR9 super-linear fold/STA behavior, which took minutes at a tenth
# of this size. Generous enough for a loaded 1-core CI container.
s10k_start=$(date +%s)
cargo run --release --bin dpmc -- bench --designs S10k --jobs 1 --out /dev/null
s10k_elapsed=$(( $(date +%s) - s10k_start ))
if [ "$s10k_elapsed" -gt 30 ]; then
  echo "S10k budget: FAIL (${s10k_elapsed}s > 30s)"
  exit 1
fi
echo "S10k budget: OK (${s10k_elapsed}s)"

echo "==> dpmc bench --jobs determinism (parallel report/events == serial report/events)"
cargo run --release --bin dpmc -- bench --jobs 1 --out /tmp/dpmc_jobs1.json \
  --telemetry counters --events /tmp/dpmc_ev1.jsonl
cargo run --release --bin dpmc -- bench --jobs 4 --out /tmp/dpmc_jobs4.json \
  --telemetry counters --events /tmp/dpmc_ev4.jsonl
diff <(grep -v '"us":' /tmp/dpmc_jobs1.json) <(grep -v '"us":' /tmp/dpmc_jobs4.json)
cmp /tmp/dpmc_ev1.jsonl /tmp/dpmc_ev4.jsonl
rm -f /tmp/dpmc_jobs1.json /tmp/dpmc_jobs4.json /tmp/dpmc_ev1.jsonl /tmp/dpmc_ev4.jsonl

echo "==> dpmc events golden (counters stream byte-stable against the committed file)"
cargo run --release --bin dpmc -- bench --designs fig3 --jobs 1 --telemetry counters \
  --events /tmp/dpmc_events.jsonl --out /dev/null
diff tests/golden/events_fig3.jsonl /tmp/dpmc_events.jsonl
head -1 /tmp/dpmc_events.jsonl | grep -q '"schema":"dpmc-events/1"'
rm -f /tmp/dpmc_events.jsonl

echo "==> dpmc profile (every builtin: self-profile + non-empty collapsed stacks)"
for d in fig1 fig2 fig3 fig4 D1 D2 D3 D4 D5 S64 S160 S400 S1000; do
  cargo run --release --bin dpmc -- profile "$d" --top 5 --stacks /tmp/dpmc_stacks.txt \
    > /tmp/dpmc_profile.txt 2> /dev/null
  grep -q "analysis cost by op kind" /tmp/dpmc_profile.txt
  test -s /tmp/dpmc_stacks.txt
done
rm -f /tmp/dpmc_profile.txt /tmp/dpmc_stacks.txt

echo "==> dpmc profile determinism (phase structure stable across runs)"
scrub='"total_us":|"self_us":|"est_ns_per_visit":'
cargo run --release --bin dpmc -- profile S400 --json 2> /dev/null \
  | grep -Ev "$scrub" > /tmp/dpmc_prof1.json
cargo run --release --bin dpmc -- profile S400 --json 2> /dev/null \
  | grep -Ev "$scrub" > /tmp/dpmc_prof2.json
diff /tmp/dpmc_prof1.json /tmp/dpmc_prof2.json
rm -f /tmp/dpmc_prof1.json /tmp/dpmc_prof2.json

echo "==> telemetry overhead gate (full-level flow within 5% of off on S1000)"
cargo run --release --bin dpmc -- profile S1000 --overhead-gate 5

echo "==> dpmc faultcheck (fixed seeds: detect-or-degrade on every builtin)"
cargo run --release --bin dpmc -- faultcheck --seeds 8

echo "==> dpmc serve (cold vs warm through the store: scrubbed responses identical)"
# Cold run fills the content-addressed store; the warm rerun of the same
# batch must answer every request from the stored netlist with a
# byte-identical QoR payload (everything before the volatile
# cache/attempts/elapsed tail), and the trailing stats line must report a
# 100% cache hit rate. Throughput and hit rate are printed for the log.
serve_store=/tmp/dpmc_serve_store
rm -rf "$serve_store"
cat > /tmp/dpmc_serve_req.jsonl <<'EOF'
{"id":"r1","design":"fig1"}
{"id":"r2","design":"fig2"}
{"id":"r3","design":"fig3"}
{"id":"r4","design":"fig4"}
{"id":"r5","design":"D1"}
{"id":"r6","design":"fig1","strategy":"old"}
{"id":"r7","design":"fig3","adder":"ripple"}
EOF
cargo run --release --bin dpmc -- serve --store "$serve_store" --jobs 2 \
  < /tmp/dpmc_serve_req.jsonl > /tmp/dpmc_serve_cold.jsonl
cargo run --release --bin dpmc -- serve --store "$serve_store" --jobs 2 \
  < /tmp/dpmc_serve_req.jsonl > /tmp/dpmc_serve_warm.jsonl
scrub_serve() { grep -v 'dpmc-serve-stats' "$1" | sed 's/,"cache":.*$//'; }
diff <(scrub_serve /tmp/dpmc_serve_cold.jsonl) <(scrub_serve /tmp/dpmc_serve_warm.jsonl)
cold_hits=$(grep -c '"level":"netlist"' /tmp/dpmc_serve_cold.jsonl || true)
if [ "$cold_hits" -ne 0 ]; then
  echo "serve gate: FAIL (cold run answered from a cache that should be empty)"
  exit 1
fi
warm_misses=$(grep -v 'dpmc-serve-stats' /tmp/dpmc_serve_warm.jsonl \
  | grep -cv '"level":"netlist"' || true)
if [ "$warm_misses" -ne 0 ]; then
  echo "serve gate: FAIL ($warm_misses warm response(s) not served from the stored netlist)"
  exit 1
fi
grep -q '"hit_rate":1' /tmp/dpmc_serve_warm.jsonl
echo "serve gate: warm $(grep -o '"hit_rate":[0-9.]*' /tmp/dpmc_serve_warm.jsonl), \
$(grep -o '"throughput_rps":[0-9.]*' /tmp/dpmc_serve_warm.jsonl)"
rm -rf "$serve_store" /tmp/dpmc_serve_req.jsonl /tmp/dpmc_serve_cold.jsonl /tmp/dpmc_serve_warm.jsonl

echo "==> dpmc faultcheck --serve (nine-scenario service chaos matrix)"
cargo run --release --bin dpmc -- faultcheck --serve --designs fig1,fig3 2> /dev/null

echo "==> dpmc analyze (A-family cross-proofs on every builtin; deterministic)"
cargo run --release --bin dpmc -- analyze --designs all --json > /tmp/dpmc_analyze1.json
cargo run --release --bin dpmc -- analyze --designs all --json > /tmp/dpmc_analyze2.json
diff /tmp/dpmc_analyze1.json /tmp/dpmc_analyze2.json
grep -q '"passed": true' /tmp/dpmc_analyze1.json
rm -f /tmp/dpmc_analyze1.json /tmp/dpmc_analyze2.json

echo "==> dpmc analyze --corrupt-ic (the planted lying IC bound must be flagged)"
if cargo run --release --bin dpmc -- analyze --designs D1 --corrupt-ic 1 > /dev/null; then
  echo "analyze gate: FAIL (a corrupted IC bound passed the cross-proof)"
  exit 1
fi

echo "==> unwrap/expect lint (non-test code of src/ and core crates)"
# Bare .unwrap() is banned outright outside tests/doc-comments; justified
# .expect("invariant") calls are budgeted — adding a new one without
# raising the budget (and justifying it in review) fails the gate.
# PR9: +2 for the dense SignalTable lookups in dp-synth (cluster.rs,
# flow.rs) — "every signal source is synthesized before its readers" is
# the topological-order invariant of the synthesis loop.
EXPECT_BUDGET=39
lint_scope="src crates/analysis/src crates/merge/src crates/synth/src crates/netlist/src"
unwraps=0; expects=0
for f in $(find $lint_scope -name '*.rs'); do
  u=$(awk '/#\[cfg\(test\)\]/{exit} {t=$0; sub(/^[ \t]+/,"",t)} t ~ /^\/\// {next} /\.unwrap\(\)/{c++} END{print c+0}' "$f")
  e=$(awk '/#\[cfg\(test\)\]/{exit} {t=$0; sub(/^[ \t]+/,"",t)} t ~ /^\/\// {next} /\.expect\(/{c++} END{print c+0}' "$f")
  if [ "$u" -gt 0 ]; then echo "  $f: $u bare .unwrap() outside tests"; fi
  unwraps=$((unwraps + u)); expects=$((expects + e))
done
if [ "$unwraps" -gt 0 ]; then
  echo "unwrap lint: FAIL ($unwraps bare .unwrap() in non-test code; use a typed error or .expect with an invariant message)"
  exit 1
fi
if [ "$expects" -gt "$EXPECT_BUDGET" ]; then
  echo "unwrap lint: FAIL ($expects .expect() calls in non-test code > budget $EXPECT_BUDGET; prefer typed errors, or raise the budget with justification)"
  exit 1
fi
echo "unwrap lint: OK (0 bare unwraps, $expects/$EXPECT_BUDGET expects)"

echo "==> panic lint (non-test code of src/ and all crates)"
# Bare panic!/unreachable! and slice-indexing unwraps (.get(..).unwrap(),
# [..].unwrap()) are banned outside tests: use a typed error, restructure
# the match to be exhaustive, or .expect() with an invariant message
# (which the budget above accounts for).
panics=0
for f in $(find src crates/*/src -name '*.rs'); do
  p=$(awk '/#\[cfg\(test\)\]/{exit} {t=$0; sub(/^[ \t]+/,"",t)} t ~ /^\/\// {next} \
       /(panic!|unreachable!)\(/ {c++} \
       /\.get\([^)]*\)[ \t]*\.unwrap\(\)/ {c++} \
       /\[[^]]*\][ \t]*\.unwrap\(\)/ {c++} \
       END{print c+0}' "$f")
  if [ "$p" -gt 0 ]; then echo "  $f: $p bare panic!/unreachable!/slice-index unwrap outside tests"; fi
  panics=$((panics + p))
done
if [ "$panics" -gt 0 ]; then
  echo "panic lint: FAIL ($panics bare panic!/unreachable!/slice-index unwrap in non-test code)"
  exit 1
fi
echo "panic lint: OK"

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "OK"
