//! Semantic verifier and diagnostics for the datapath-merge flow.
//!
//! The transformations this workspace performs — required-precision
//! clamping (Theorem 4.2), information-content pruning with extension-node
//! insertion (Lemmas 5.6/5.7), break-node clustering (Section 6) and
//! CSA-tree synthesis — each rest on invariants the paper proves. This
//! crate re-derives those invariants *independently* on the produced
//! artifacts and reports violations as structured [`Diagnostic`]s, so a bug
//! in any transformation surfaces as a named, located finding instead of a
//! silent mis-synthesis.
//!
//! A [`Verifier`] runs an ordered set of [`Pass`]es over a [`Context`]
//! holding the graph under scrutiny plus whatever optional artifacts exist:
//! the pre-transformation baseline, the [`Clustering`], the synthesized
//! [`Netlist`], and the width pipeline's [`TransformReport`]. The bundled
//! passes cover five families of checks:
//!
//! | family | pass | checks |
//! |--------|------|--------|
//! | `V0xx` | structural | DFG validity (cycles, arity, ports, fanout) |
//! | `R0xx` | required precision | RP recomputation vs widths, fixpoint |
//! | `I0xx` | information content | bound well-formedness, extension nodes |
//! | `C0xx` | cluster legality | break-node audit, synthesizability |
//! | `N0xx` | netlist | drivers, cycles, interface, fanout bookkeeping |
//! | `A0xx` | abstract interpretation | demand ⊆ RP, IC entailment, static diagnostics |
//!
//! Strictness: checks that only hold *after* [`optimize_widths`] has run to
//! a fixpoint (e.g. `r(p) <= w(n)`, "no edge wider than its source") are
//! gated behind [`Context::assume_optimized`] — on a raw design those
//! conditions are routinely and legitimately false.
//!
//! ```
//! use dp_bitvec::Signedness::Unsigned;
//! use dp_verify::{Context, Verifier};
//! use dp_analysis::optimize_widths;
//!
//! let mut g = dp_dfg::Dfg::new();
//! let a = g.input("a", 4);
//! let b = g.input("b", 4);
//! let s = g.op(dp_dfg::OpKind::Add, 16, &[(a, Unsigned), (b, Unsigned)]);
//! g.output("o", 5, s, Unsigned);
//! let baseline = g.clone();
//! let report = optimize_widths(&mut g);
//! let diags = Verifier::default().run(
//!     &Context::new(&g).baseline(&baseline).transform(&report).optimized(true),
//! );
//! assert!(!diags.has_errors(), "{}", diags.render(&g));
//! ```
//!
//! [`optimize_widths`]: dp_analysis::optimize_widths

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diag;
mod passes;

use dp_analysis::TransformReport;
use dp_dfg::Dfg;
use dp_merge::Clustering;
use dp_metrics::Recorder;
use dp_netlist::Netlist;

pub use diag::{Code, Diagnostic, Location, Severity};
pub use passes::{
    AbsintChecks, ClusterLegality, IcSoundness, NetlistChecks, RpSoundness, StructuralValidity,
};

/// Everything a verification run can look at.
///
/// Only [`Context::graph`] is mandatory; passes skip checks whose inputs
/// are absent. Build with [`Context::new`] and the chained setters.
#[derive(Clone, Copy)]
pub struct Context<'a> {
    /// The graph under scrutiny (usually post-transformation).
    pub graph: &'a Dfg,
    /// The design as parsed, before any width transformation. Enables the
    /// pairwise checks (`R002`): node ids are stable across the pipeline's
    /// transformations, so nodes correspond by id.
    pub baseline: Option<&'a Dfg>,
    /// The clustering to audit (`C0xx`).
    pub clustering: Option<&'a Clustering>,
    /// The synthesized netlist to audit (`N0xx`).
    pub netlist: Option<&'a Netlist>,
    /// The width pipeline's report (`R004` convergence check).
    pub transform: Option<&'a TransformReport>,
    /// Intrinsic information-content overrides the flow applied (Huffman
    /// rebalancing — or a fault injection). When set, the `A0xx` pass
    /// audits the IC analysis *under these overrides* instead of a clean
    /// recomputation, so a planted lie is checked rather than discarded.
    pub ic_overrides: Option<&'a dp_analysis::IntrinsicOverrides>,
    /// Whether `graph` is claimed to be at the width-optimization fixpoint.
    /// Turns on the strict post-fixpoint invariants (`R001`, `R003`,
    /// `I002`–`I005`).
    pub assume_optimized: bool,
}

impl<'a> Context<'a> {
    /// A context with only the graph; everything else absent, lenient mode.
    pub fn new(graph: &'a Dfg) -> Self {
        Context {
            graph,
            baseline: None,
            clustering: None,
            netlist: None,
            transform: None,
            ic_overrides: None,
            assume_optimized: false,
        }
    }

    /// Attaches the pre-transformation design for pairwise checks.
    pub fn baseline(mut self, baseline: &'a Dfg) -> Self {
        self.baseline = Some(baseline);
        self
    }

    /// Attaches a clustering to audit.
    pub fn clustering(mut self, clustering: &'a Clustering) -> Self {
        self.clustering = Some(clustering);
        self
    }

    /// Attaches a netlist to audit.
    pub fn netlist(mut self, netlist: &'a Netlist) -> Self {
        self.netlist = Some(netlist);
        self
    }

    /// Attaches the width pipeline's transform report.
    pub fn transform(mut self, transform: &'a TransformReport) -> Self {
        self.transform = Some(transform);
        self
    }

    /// Attaches the intrinsic IC overrides the flow ran under, so the
    /// `A0xx` pass audits the bounds actually used.
    pub fn ic_overrides(mut self, overrides: &'a dp_analysis::IntrinsicOverrides) -> Self {
        self.ic_overrides = Some(overrides);
        self
    }

    /// Sets whether the graph is claimed to be width-optimized.
    pub fn optimized(mut self, yes: bool) -> Self {
        self.assume_optimized = yes;
        self
    }
}

/// One checker: examines the context and appends diagnostics.
pub trait Pass {
    /// Short stable name, for logs and pass selection.
    fn name(&self) -> &'static str;

    /// Whether this pass requires a structurally valid graph. The verifier
    /// skips such passes when validation failed — analysis on a cyclic or
    /// mis-ported graph would panic, and the `V0xx` diagnostics already
    /// tell the story.
    fn needs_valid_graph(&self) -> bool {
        true
    }

    /// Runs the checks, pushing findings onto `out`.
    fn run(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>);
}

/// An ordered registry of [`Pass`]es.
///
/// [`Verifier::default`] installs the five bundled passes; [`Verifier::new`]
/// starts empty for custom pipelines.
pub struct Verifier {
    passes: Vec<Box<dyn Pass>>,
}

impl Default for Verifier {
    fn default() -> Self {
        let mut v = Verifier::new();
        v.register(Box::new(StructuralValidity));
        v.register(Box::new(RpSoundness));
        v.register(Box::new(IcSoundness));
        v.register(Box::new(ClusterLegality));
        v.register(Box::new(NetlistChecks));
        v.register(Box::new(AbsintChecks));
        v
    }
}

impl Verifier {
    /// An empty verifier with no passes.
    pub fn new() -> Self {
        Verifier { passes: Vec::new() }
    }

    /// Appends a pass; passes run in registration order.
    pub fn register(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// The registered pass names, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every applicable pass and collects the findings.
    ///
    /// Passes that need a valid graph are skipped when structural
    /// validation fails, so a broken graph yields its `V0xx` diagnostics
    /// instead of a panic inside an analysis.
    pub fn run(&self, cx: &Context<'_>) -> VerifyReport {
        self.run_with(cx, &mut Recorder::disabled())
    }

    /// [`Verifier::run`] with timing spans: one `verify` root containing
    /// one child span per executed pass, named after [`Pass::name`].
    /// Skipped passes record no span.
    pub fn run_with(&self, cx: &Context<'_>, rec: &mut Recorder) -> VerifyReport {
        let whole = rec.span("verify");
        let graph_ok = cx.graph.validate().is_ok();
        let mut diagnostics = Vec::new();
        for pass in &self.passes {
            if pass.needs_valid_graph() && !graph_ok {
                continue;
            }
            rec.scope(pass.name(), |_| pass.run(cx, &mut diagnostics));
        }
        rec.finish(whole);
        // Worst first; stable within a severity so pass order is kept.
        diagnostics.sort_by_key(|d| std::cmp::Reverse(d.severity()));
        VerifyReport { diagnostics }
    }
}

/// The findings of one [`Verifier::run`], worst first.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// All findings, sorted worst-first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of findings at the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity() == severity).count()
    }

    /// Whether any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Whether any finding carries the given code.
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The findings carrying the given code.
    pub fn with_code(&self, code: Code) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// `"E error(s), W warning(s), I info(s)"`.
    pub fn summary(&self) -> String {
        format!(
            "{} error(s), {} warning(s), {} info(s)",
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        )
    }

    /// Renders every finding, one per line, naming nodes via `g`.
    pub fn render(&self, g: &Dfg) -> String {
        let mut s = String::new();
        for d in &self.diagnostics {
            s.push_str(&d.render(g));
            s.push('\n');
        }
        s
    }
}

/// Runs the default verifier over a context — the one-call entry point.
pub fn verify(cx: &Context<'_>) -> VerifyReport {
    Verifier::default().run(cx)
}
