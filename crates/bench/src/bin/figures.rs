//! Regenerates the paper's Figures 1-4: the illustrative analyses, printed
//! as before/after reports. Pass a figure name (fig1..fig4) to show one.

use dp_analysis::{
    huffman_bound, info_content, naive_skewed_bound, optimize_widths, required_precision,
};
use dp_merge::{cluster_leakage, cluster_max};
use dp_testcases::figures;

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all = which.is_empty();
    let want = |n: &str| all || which.iter().any(|w| w == n);

    if want("fig1") {
        let fig = figures::fig1();
        println!("== Figure 1: cluster creation in a DFG ==");
        let mut g = fig.g.clone();
        let (clustering, _) = cluster_max(&mut g);
        println!("maximal merging: {} clusters (paper: G_I, G_II)", clustering.len());
        for (k, c) in clustering.clusters.iter().enumerate() {
            println!("  G_{}: {} member(s), output {}", k + 1, c.len(), c.output);
        }
        println!();
    }
    if want("fig2") {
        let fig = figures::fig2();
        println!("== Figure 2: small required precision implies mergeability ==");
        let rp = required_precision(&fig.g);
        println!("r(N1 output) = {} (output only keeps 5 bits)", rp.output_port(fig.n1));
        let mut g = fig.g.clone();
        let report = optimize_widths(&mut g);
        println!(
            "transform G4 -> G4': {} node width(s) reduced, N1 now {} bits",
            report.node_width_changes,
            g.node(fig.n1).width()
        );
        let (clustering, _) = cluster_max(&mut g.clone());
        println!("clusters after analysis: {} (fully mergeable)", clustering.len());
        println!();
    }
    if want("fig3") {
        let fig = figures::fig3();
        println!("== Figure 3: low information content implies mergeability ==");
        let ic = info_content(&fig.g);
        println!(
            "i(N1) = {}  i(N2) = {}  i(N3) = {}",
            ic.output(fig.n1),
            ic.output(fig.n2),
            ic.output(fig.n3)
        );
        println!("old (leakage) clusters: {}", cluster_leakage(&fig.g).len());
        let mut g = fig.g.clone();
        let (clustering, _) = cluster_max(&mut g);
        println!("new (info) clusters:    {} (entire graph mergeable)", clustering.len());
        println!("N1 width after G5 -> G5': {} bits", g.node(fig.n1).width());
        println!();
    }
    if want("fig4") {
        println!("== Figure 4: refining bounds by safe rebalancing ==");
        let terms = figures::fig4_terms();
        println!("skewed-chain bound:  {}", naive_skewed_bound(&terms));
        println!("Huffman rebalanced:  {}", huffman_bound(&terms));
        println!("(paper: <7,0> refined to <6,0>)");
    }
}
