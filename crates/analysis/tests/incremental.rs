//! Differential equivalence: the incremental worklist pipeline
//! ([`optimize_widths_with`]) must be observationally identical to the
//! full-sweep reference ([`optimize_widths_full_with`]) — same final
//! graph, same trace-event stream, same per-round change counters — on
//! random designs. Only the work counters (`worklist_pushes`,
//! `ports_visited`, `ports_skipped`) and wall-times may differ.

use dp_analysis::{optimize_widths_full_with, optimize_widths_with, TransformReport};
use dp_dfg::gen::{random_dfg, random_inputs, GenConfig};
use dp_dfg::Dfg;
use dp_metrics::Recorder;
use dp_trace::TraceLog;
use proptest::prelude::*;

/// Structural fingerprint of a graph: everything the pipeline can change
/// plus everything it must not.
fn fingerprint(g: &Dfg) -> Vec<String> {
    let mut out = Vec::with_capacity(g.num_nodes() + g.num_edges());
    for n in g.node_ids() {
        let node = g.node(n);
        out.push(format!("n{} {:?} w={}", n.index(), node.kind(), node.width()));
    }
    for e in g.edge_ids() {
        let edge = g.edge(e);
        out.push(format!(
            "e{} {}->{} w={} {:?}",
            e.index(),
            edge.src().index(),
            edge.dst().index(),
            edge.width(),
            edge.signedness()
        ));
    }
    out
}

/// Per-round change counters, excluding work counters and timing.
fn round_changes(r: &TransformReport) -> Vec<(usize, usize, usize, usize, usize, i64)> {
    r.history
        .iter()
        .map(|s| {
            (
                s.rp_node_changes,
                s.rp_edge_changes,
                s.ic_edge_changes,
                s.ic_node_changes,
                s.extensions_inserted,
                s.width_delta_bits,
            )
        })
        .collect()
}

fn run_both(g0: &Dfg) -> (Dfg, TransformReport, TraceLog, Dfg, TransformReport, TraceLog) {
    let mut g_inc = g0.clone();
    let mut tr_inc = TraceLog::new();
    let rep_inc = optimize_widths_with(&mut g_inc, &mut Recorder::disabled(), &mut tr_inc);
    let mut g_full = g0.clone();
    let mut tr_full = TraceLog::new();
    let rep_full = optimize_widths_full_with(&mut g_full, &mut Recorder::disabled(), &mut tr_full);
    (g_inc, rep_inc, tr_inc, g_full, rep_full, tr_full)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// The incremental pipeline's final graph, trace stream, and
    /// per-round counters are bit-identical to the full sweep's.
    #[test]
    fn incremental_matches_full_sweep(seed in any::<u64>(), ops in 3usize..40) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1AC5);
        let g0 = random_dfg(&mut rng, &GenConfig { num_ops: ops, ..GenConfig::default() });
        let (g_inc, rep_inc, tr_inc, g_full, rep_full, tr_full) = run_both(&g0);

        prop_assert_eq!(fingerprint(&g_inc), fingerprint(&g_full));
        prop_assert_eq!(tr_inc.events(), tr_full.events());
        prop_assert_eq!(rep_inc.rounds, rep_full.rounds);
        prop_assert_eq!(rep_inc.converged, rep_full.converged);
        prop_assert_eq!(rep_inc.node_width_changes, rep_full.node_width_changes);
        prop_assert_eq!(rep_inc.edge_width_changes, rep_full.edge_width_changes);
        prop_assert_eq!(rep_inc.extensions_inserted, rep_full.extensions_inserted);
        prop_assert_eq!(round_changes(&rep_inc), round_changes(&rep_full));

        // Both optimized graphs still evaluate like the original.
        g_inc.validate().unwrap();
        for _ in 0..4 {
            let inputs = random_inputs(&g0, &mut rng);
            prop_assert_eq!(
                g0.evaluate(&inputs).unwrap(),
                g_inc.evaluate(&inputs).unwrap()
            );
        }
    }

    /// Once past round 1 the worklist actually skips settled work: the
    /// skip counter is positive and the full-sweep visit budget is never
    /// exceeded.
    #[test]
    fn worklist_skips_after_first_round(seed in any::<u64>(), ops in 10usize..40) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5C1F);
        let g0 = random_dfg(&mut rng, &GenConfig { num_ops: ops, ..GenConfig::default() });
        let mut g = g0.clone();
        let rep = optimize_widths_with(&mut g, &mut Recorder::disabled(), &mut TraceLog::disabled());
        for (i, s) in rep.history.iter().enumerate() {
            if i == 0 {
                // Round 1 is a full sweep by construction.
                prop_assert_eq!(s.ports_skipped, 0, "round 1 skipped work");
            } else {
                prop_assert!(s.ports_skipped > 0, "round {} skipped nothing", i + 1);
            }
            prop_assert!(s.ports_visited + s.ports_skipped >= s.ports_visited);
        }
        if rep.rounds > 1 {
            prop_assert!(rep.sweep_skip_ratio() > 0.0);
            prop_assert!(rep.ports_skipped() > 0);
        }
    }
}

/// Re-running the incremental pipeline on an already-optimized graph
/// converges in one quiescent round with zero changes and a full skip.
#[test]
fn rerun_on_fixpoint_is_one_quiet_round() {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xF18ED);
    let mut g = random_dfg(&mut rng, &GenConfig { num_ops: 25, ..GenConfig::default() });
    dp_analysis::optimize_widths(&mut g);
    let rep = dp_analysis::optimize_widths(&mut g);
    assert!(rep.converged);
    assert_eq!(rep.rounds, 1);
    assert_eq!(rep.node_width_changes + rep.edge_width_changes + rep.extensions_inserted, 0);
}
