//! The information-content tuple `⟨i, t⟩` of Definition 5.1.

use std::fmt;

use dp_bitvec::Signedness;

/// An upper bound on the information content of a signal: the signal is
/// always the `t`-extension of its `i` least significant bits
/// (Definition 5.1). Bounds are always stored **relative to a concrete
/// signal width**; `i` equal to that width is the trivial bound ("no
/// information about the upper bits").
///
/// `i == 0` is allowed only with [`Signedness::Unsigned`] and states the
/// signal is constantly zero.
///
/// # Examples
///
/// ```
/// use dp_analysis::Ic;
/// use dp_bitvec::{BitVec, Signedness};
///
/// let ic = Ic::new(3, Signedness::Signed);
/// // Any 8-bit signal that is a sign-extension of 3 bits satisfies it:
/// assert!(ic.holds_for(&BitVec::from_i64(8, -4)));
/// assert!(!ic.holds_for(&BitVec::from_i64(8, 9)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ic {
    /// Number of least significant bits that carry all the information.
    pub i: usize,
    /// The extension discipline reconstructing the full signal from them.
    pub t: Signedness,
}

impl Ic {
    /// Creates a bound.
    ///
    /// # Panics
    ///
    /// Panics if `i == 0` with [`Signedness::Signed`] (a signed extension
    /// needs at least the sign bit).
    pub fn new(i: usize, t: Signedness) -> Self {
        assert!(
            i > 0 || t == Signedness::Unsigned,
            "a signed information content needs at least one bit"
        );
        Ic { i, t }
    }

    /// The trivial (information-free) bound for a signal of width `w`.
    pub fn trivial(w: usize) -> Self {
        Ic { i: w, t: Signedness::Unsigned }
    }

    /// Returns `true` if this bound says nothing about a signal of width
    /// `w` (every `w`-bit pattern satisfies it).
    pub fn is_trivial_at(&self, w: usize) -> bool {
        self.i >= w
    }

    /// The equivalent *signed* bound: `⟨i, signed⟩` stays put, while
    /// `⟨i, unsigned⟩` needs one extra (zero) sign bit. This is the
    /// promotion that makes Lemma 5.4 sound for mixed-signedness operands
    /// (see `DESIGN.md`).
    ///
    /// ```
    /// use dp_analysis::Ic;
    /// use dp_bitvec::Signedness::*;
    /// assert_eq!(Ic::new(4, Unsigned).as_signed(), Ic::new(5, Signed));
    /// assert_eq!(Ic::new(4, Signed).as_signed(), Ic::new(4, Signed));
    /// ```
    pub fn as_signed(self) -> Self {
        match self.t {
            Signedness::Signed => self,
            Signedness::Unsigned => Ic { i: self.i + 1, t: Signedness::Signed },
        }
    }

    /// Checks the bound against one concrete signal value.
    pub fn holds_for(&self, value: &dp_bitvec::BitVec) -> bool {
        value.is_extension_of(self.i, self.t)
    }

    /// Returns whichever of the two bounds is *weaker* in width (used when
    /// taking a conservative join); prefers `self` on ties.
    pub fn max_width(self, other: Ic) -> Ic {
        if other.i > self.i {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for Ic {
    /// The paper's tuple notation with the numeric signedness encoding,
    /// e.g. `<6,0>` for six unsigned bits.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{},{}>", self.i, self.t.as_bit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_bitvec::{BitVec, Signedness::*};

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Ic::new(7, Unsigned).to_string(), "<7,0>");
        assert_eq!(Ic::new(6, Signed).to_string(), "<6,1>");
    }

    #[test]
    fn trivial_bounds() {
        let t = Ic::trivial(8);
        assert!(t.is_trivial_at(8));
        assert!(!t.is_trivial_at(9));
        for raw in 0..256u64 {
            assert!(t.holds_for(&BitVec::from_u64(8, raw)));
        }
    }

    #[test]
    fn zero_ic_means_constant_zero() {
        let z = Ic::new(0, Unsigned);
        assert!(z.holds_for(&BitVec::zero(8)));
        assert!(!z.holds_for(&BitVec::from_u64(8, 1)));
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_signed_rejected() {
        let _ = Ic::new(0, Signed);
    }

    #[test]
    fn promotion_is_sound() {
        // Every value satisfying <i, U> also satisfies <i+1, S>.
        for raw in 0..256u64 {
            let v = BitVec::from_u64(8, raw);
            for i in 0..8 {
                if Ic::new(i, Unsigned).holds_for(&v) {
                    assert!(Ic::new(i, Unsigned).as_signed().holds_for(&v), "{v} i={i}");
                }
            }
        }
    }

    #[test]
    fn max_width_prefers_wider() {
        let a = Ic::new(3, Unsigned);
        let b = Ic::new(5, Signed);
        assert_eq!(a.max_width(b), b);
        assert_eq!(b.max_width(a), b);
    }
}
