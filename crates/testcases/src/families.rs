//! Parametric workload families for examples, benches and ablations.

use dp_bitvec::{BitVec, Signedness};
use dp_dfg::{Dfg, NodeId, OpKind};

use Signedness::{Signed, Unsigned};

/// A linear (skewed) accumulation chain of `n` unsigned `width`-bit
/// inputs, each intermediate at its full skewed width. The worst case for
/// a first-pass information bound, the best showcase for rebalancing.
pub fn adder_chain(n: usize, width: usize) -> Dfg {
    assert!(n >= 2, "a chain needs at least two inputs");
    let mut g = Dfg::new();
    let inputs: Vec<NodeId> = (0..n).map(|k| g.input(format!("x{k}"), width)).collect();
    let mut acc = inputs[0];
    let mut w = width;
    for &i in &inputs[1..] {
        w += 1;
        acc = g.op(OpKind::Add, w, &[(acc, Unsigned), (i, Unsigned)]);
    }
    g.output("sum", w, acc, Unsigned);
    g
}

/// A balanced binary addition tree of `n` unsigned `width`-bit inputs.
pub fn adder_tree(n: usize, width: usize) -> Dfg {
    assert!(n >= 2, "a tree needs at least two inputs");
    let mut g = Dfg::new();
    let mut level: Vec<NodeId> = (0..n).map(|k| g.input(format!("x{k}"), width)).collect();
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let w = g.node(pair[0]).width().max(g.node(pair[1]).width()) + 1;
                next.push(g.op(OpKind::Add, w, &[(pair[0], Unsigned), (pair[1], Unsigned)]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    let w = g.node(level[0]).width();
    g.output("sum", w, level[0], Unsigned);
    g
}

/// An `n`-term signed dot product `Σ aᵢ·bᵢ` with full-precision widths —
/// the workload class (FIR/FFT inner loops) the paper's introduction
/// motivates.
pub fn dot_product(n: usize, width: usize) -> Dfg {
    assert!(n >= 1);
    let mut g = Dfg::new();
    let mut terms = Vec::new();
    for k in 0..n {
        let a = g.input(format!("a{k}"), width);
        let b = g.input(format!("b{k}"), width);
        terms.push(g.op(OpKind::Mul, 2 * width, &[(a, Signed), (b, Signed)]));
    }
    let mut acc = terms[0];
    let mut w = 2 * width;
    for &t in &terms[1..] {
        w += 1;
        acc = g.op(OpKind::Add, w, &[(acc, Signed), (t, Signed)]);
    }
    g.output("dot", w, acc, Signed);
    g
}

/// A direct-form FIR filter with constant coefficients: `Σ cᵢ·xᵢ` where
/// `xᵢ` are the tap inputs and `cᵢ` small signed constants (derived from
/// `seed` deterministically).
pub fn fir_filter(taps: usize, width: usize, coeff_bits: usize, seed: u64) -> Dfg {
    assert!(taps >= 1 && coeff_bits >= 2);
    let mut g = Dfg::new();
    let mut state = seed | 1;
    let mut terms = Vec::new();
    for k in 0..taps {
        // Small xorshift for deterministic, varied coefficients.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let max = (1i64 << (coeff_bits - 1)) - 1;
        let c = (state % (2 * max as u64 + 1)) as i64 - max;
        let x = g.input(format!("x{k}"), width);
        let coeff = g.constant(BitVec::from_i64(coeff_bits, c));
        terms.push(g.op(OpKind::Mul, width + coeff_bits, &[(x, Signed), (coeff, Signed)]));
    }
    let mut acc = terms[0];
    let mut w = width + coeff_bits;
    for &t in &terms[1..] {
        w += 1;
        acc = g.op(OpKind::Add, w, &[(acc, Signed), (t, Signed)]);
    }
    g.output("y", w, acc, Signed);
    g
}

/// A complex multiplier `(ar + j·ai) * (br + j·bi)`: real part
/// `ar·br − ai·bi`, imaginary part `ar·bi + ai·br` — the FFT butterfly's
/// arithmetic core.
pub fn complex_multiplier(width: usize) -> Dfg {
    let mut g = Dfg::new();
    let ar = g.input("ar", width);
    let ai = g.input("ai", width);
    let br = g.input("br", width);
    let bi = g.input("bi", width);
    let w2 = 2 * width;
    let p1 = g.op(OpKind::Mul, w2, &[(ar, Signed), (br, Signed)]);
    let p2 = g.op(OpKind::Mul, w2, &[(ai, Signed), (bi, Signed)]);
    let p3 = g.op(OpKind::Mul, w2, &[(ar, Signed), (bi, Signed)]);
    let p4 = g.op(OpKind::Mul, w2, &[(ai, Signed), (br, Signed)]);
    let re = g.op(OpKind::Sub, w2 + 1, &[(p1, Signed), (p2, Signed)]);
    let im = g.op(OpKind::Add, w2 + 1, &[(p3, Signed), (p4, Signed)]);
    g.output("re", w2 + 1, re, Signed);
    g.output("im", w2 + 1, im, Signed);
    g
}

/// A redundant-width variant of [`dot_product`]: every intermediate is
/// declared at `declared` bits regardless of need — the D4/D5 mechanism as
/// a parametric family for sweeps.
pub fn redundant_dot_product(n: usize, width: usize, declared: usize) -> Dfg {
    assert!(n >= 1 && declared >= 2 * width);
    let mut g = Dfg::new();
    let mut terms = Vec::new();
    for k in 0..n {
        let a = g.input(format!("a{k}"), width);
        let b = g.input(format!("b{k}"), width);
        terms.push(g.op(OpKind::Mul, declared, &[(a, Signed), (b, Signed)]));
    }
    let mut acc = terms[0];
    for &t in &terms[1..] {
        acc = g.op(OpKind::Add, declared, &[(acc, Signed), (t, Signed)]);
    }
    g.output("dot", declared, acc, Signed);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_dfg::gen::random_inputs;
    use dp_merge::cluster_max;
    use rand::{rngs::StdRng, SeedableRng};

    fn check(g: &Dfg) {
        g.validate().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut g2 = g.clone();
        let (clustering, _) = cluster_max(&mut g2);
        clustering.validate(&g2).unwrap();
        for _ in 0..10 {
            let inputs = random_inputs(g, &mut rng);
            assert_eq!(g.evaluate(&inputs).unwrap(), g2.evaluate(&inputs).unwrap());
        }
    }

    #[test]
    fn families_are_valid_and_transform_safely() {
        check(&adder_chain(6, 5));
        check(&adder_tree(9, 4));
        check(&dot_product(4, 5));
        check(&fir_filter(5, 6, 4, 0xF1));
        check(&complex_multiplier(5));
        check(&redundant_dot_product(3, 4, 24));
    }

    #[test]
    fn dot_product_computes_dot_products() {
        let g = dot_product(2, 4);
        let inputs = vec![
            dp_bitvec::BitVec::from_i64(4, 3),
            dp_bitvec::BitVec::from_i64(4, -2),
            dp_bitvec::BitVec::from_i64(4, 5),
            dp_bitvec::BitVec::from_i64(4, 7),
        ];
        let out = g.evaluate(&inputs).unwrap();
        assert_eq!(out[&g.outputs()[0]].to_i64(), Some(3 * -2 + 5 * 7));
    }

    #[test]
    fn complex_multiplier_is_correct() {
        let g = complex_multiplier(4);
        // (3 + 2j) * (-1 + 4j) = -3 + 12j + -2j + 8j^2 = -11 + 10j
        let inputs = vec![
            dp_bitvec::BitVec::from_i64(4, 3),
            dp_bitvec::BitVec::from_i64(4, 2),
            dp_bitvec::BitVec::from_i64(4, -1),
            dp_bitvec::BitVec::from_i64(4, 4),
        ];
        let out = g.evaluate(&inputs).unwrap();
        assert_eq!(out[&g.outputs()[0]].to_i64(), Some(-11));
        assert_eq!(out[&g.outputs()[1]].to_i64(), Some(10));
    }

    #[test]
    fn fir_is_deterministic_per_seed() {
        let g1 = fir_filter(4, 5, 4, 9);
        let g2 = fir_filter(4, 5, 4, 9);
        assert_eq!(g1.to_dot(), g2.to_dot());
        let g3 = fir_filter(4, 5, 4, 10);
        assert_ne!(g1.to_dot(), g3.to_dot());
    }

    #[test]
    fn redundant_family_collapses_under_analysis() {
        let g = redundant_dot_product(4, 4, 32);
        let before = g.total_op_width();
        let mut g2 = g.clone();
        let _ = cluster_max(&mut g2);
        assert!(g2.total_op_width() * 2 < before);
    }
}
