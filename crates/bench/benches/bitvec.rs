//! BitVec fast-path microbenchmarks: the tiered representation
//! (`BitVec`) against the retained limb-vector reference (`RefBitVec`),
//! per width tier and per operation, plus the word-parallel netlist
//! simulation against the scalar per-vector loop.
//!
//! Each timed routine replays the same operation over a fixed working
//! set of values so one sample amortizes the timer overhead; old and new
//! run the identical schedule, making the mean-time ratio the speedup.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_bitvec::{BitVec, RefBitVec};
use dp_dfg::gen::random_inputs;
use dp_synth::{run_flow, MergeStrategy, SynthConfig};
use dp_testcases::scaling_design;
use rand::{rngs::StdRng, SeedableRng};

/// One representative width per storage situation: Small interior and
/// edge, Mid interior and edge, Big.
const WIDTHS: [usize; 5] = [16, 64, 96, 128, 192];

/// How many values each timed routine walks over.
const SET: usize = 256;

fn value_set(w: usize) -> (Vec<BitVec>, Vec<RefBitVec>) {
    let new: Vec<BitVec> =
        (0..SET).map(|s| BitVec::from_fn(w, |i| (i * 31 + s * 17 + i * i) % 7 < 3)).collect();
    let old = new.iter().map(RefBitVec::from_bitvec).collect();
    (new, old)
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitvec");
    group.sample_size(20);
    for &w in &WIDTHS {
        let (new, old) = value_set(w);

        group.bench_with_input(BenchmarkId::new(format!("add/w{w}"), "new"), &new, |b, v| {
            b.iter(|| {
                let mut acc = v[0].clone();
                for x in &v[1..] {
                    acc = acc.wrapping_add(black_box(x));
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new(format!("add/w{w}"), "old"), &old, |b, v| {
            b.iter(|| {
                let mut acc = v[0].clone();
                for x in &v[1..] {
                    acc = acc.wrapping_add(black_box(x));
                }
                acc
            })
        });

        group.bench_with_input(BenchmarkId::new(format!("mul/w{w}"), "new"), &new, |b, v| {
            b.iter(|| {
                let mut acc = v[0].clone();
                for x in &v[1..] {
                    acc = acc.wrapping_mul(black_box(x));
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new(format!("mul/w{w}"), "old"), &old, |b, v| {
            b.iter(|| {
                let mut acc = v[0].clone();
                for x in &v[1..] {
                    acc = acc.wrapping_mul(black_box(x));
                }
                acc
            })
        });

        group.bench_with_input(BenchmarkId::new(format!("xor/w{w}"), "new"), &new, |b, v| {
            b.iter(|| {
                let mut acc = v[0].clone();
                for x in &v[1..] {
                    acc = acc.xor(black_box(x));
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new(format!("xor/w{w}"), "old"), &old, |b, v| {
            b.iter(|| {
                let mut acc = v[0].clone();
                for x in &v[1..] {
                    acc = acc.xor(black_box(x));
                }
                acc
            })
        });

        group.bench_with_input(BenchmarkId::new(format!("sext2x/w{w}"), "new"), &new, |b, v| {
            b.iter(|| v.iter().map(|x| black_box(x).sext(2 * w).msb() as usize).sum::<usize>())
        });
        group.bench_with_input(BenchmarkId::new(format!("sext2x/w{w}"), "old"), &old, |b, v| {
            b.iter(|| v.iter().map(|x| black_box(x).sext(2 * w).msb() as usize).sum::<usize>())
        });

        group.bench_with_input(BenchmarkId::new(format!("msw/w{w}"), "new"), &new, |b, v| {
            b.iter(|| v.iter().map(|x| black_box(x).min_signed_width()).sum::<usize>())
        });
        group.bench_with_input(BenchmarkId::new(format!("msw/w{w}"), "old"), &old, |b, v| {
            b.iter(|| v.iter().map(|x| black_box(x).min_signed_width()).sum::<usize>())
        });

        group.bench_with_input(BenchmarkId::new(format!("wmul/w{w}"), "new"), &new, |b, v| {
            b.iter(|| {
                v.iter()
                    .map(|x| black_box(x).widening_mul_signed(&v[0]).msb() as usize)
                    .sum::<usize>()
            })
        });
        group.bench_with_input(BenchmarkId::new(format!("wmul/w{w}"), "old"), &old, |b, v| {
            b.iter(|| {
                v.iter()
                    .map(|x| black_box(x).widening_mul_signed(&v[0]).msb() as usize)
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.sample_size(10);
    for &ops in &[16usize, 64] {
        let g = scaling_design(ops);
        let flow = run_flow(&g, MergeStrategy::New, &SynthConfig::default())
            .expect("scaling design synthesizes");
        let nl = flow.netlist;
        let mut rng = StdRng::seed_from_u64(0xBE7C);
        let lanes: Vec<_> = (0..64).map(|_| random_inputs(&g, &mut rng)).collect();

        group.bench_with_input(BenchmarkId::new(format!("S{ops}x64"), "batch"), &nl, |b, nl| {
            b.iter(|| nl.simulate_batch(&lanes).expect("simulates").len())
        });
        group.bench_with_input(BenchmarkId::new(format!("S{ops}x64"), "scalar"), &nl, |b, nl| {
            b.iter(|| lanes.iter().map(|l| nl.simulate(l).expect("simulates").len()).sum::<usize>())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ops, bench_sim);
criterion_main!(benches);
