//! Graphviz DOT export for DFGs.

use std::fmt::Write as _;

use crate::{Dfg, NodeKind};

/// Presentation-layer annotations for [`Dfg::to_dot_annotated`], indexed
/// by node/edge index. The graph model stays analysis-agnostic: callers
/// (e.g. `dpmc dot --annotate`) compute required precision, information
/// content and break classifications and hand the rendered strings in.
#[derive(Debug, Clone, Default)]
pub struct DotAnnotations {
    /// Extra label line(s) per node (e.g. `r=5 ⟨5,s⟩` plus the rule that
    /// last changed it). Missing or `None` entries add nothing.
    pub node_notes: Vec<Option<String>>,
    /// Fill color per node (Graphviz color string, e.g. `"#f4cccc"`);
    /// used to highlight break nodes.
    pub node_fill: Vec<Option<String>>,
    /// Extra label line(s) per edge (e.g. `r=5 ⟨4,s⟩ IC-PRUNE-EDGE`).
    pub edge_notes: Vec<Option<String>>,
}

impl DotAnnotations {
    /// Annotations sized for `g` with every entry empty.
    pub fn for_graph(g: &Dfg) -> DotAnnotations {
        DotAnnotations {
            node_notes: vec![None; g.num_nodes()],
            node_fill: vec![None; g.num_nodes()],
            edge_notes: vec![None; g.num_edges()],
        }
    }
}

fn get(v: &[Option<String>], i: usize) -> Option<&str> {
    v.get(i).and_then(|s| s.as_deref())
}

impl Dfg {
    /// Renders the graph in Graphviz DOT format. Node labels show the kind
    /// and width; edge labels show `w(e)` and `s`/`u` for the signedness —
    /// the same annotations the paper's figures use.
    ///
    /// ```
    /// use dp_dfg::{Dfg, OpKind};
    /// use dp_bitvec::Signedness::Unsigned;
    ///
    /// let mut g = Dfg::new();
    /// let a = g.input("a", 4);
    /// let n = g.op(OpKind::Neg, 4, &[(a, Unsigned)]);
    /// g.output("o", 4, n, Unsigned);
    /// let dot = g.to_dot();
    /// assert!(dot.contains("digraph"));
    /// assert!(dot.contains("a : 4"));
    /// ```
    pub fn to_dot(&self) -> String {
        self.to_dot_annotated(&DotAnnotations::default())
    }

    /// [`Dfg::to_dot`] with per-node/per-edge [`DotAnnotations`]: node
    /// notes become extra label lines, node fills color the node (break
    /// nodes in `dpmc dot --annotate`), and edge notes extend the edge
    /// label. Empty annotations render exactly like [`Dfg::to_dot`].
    pub fn to_dot_annotated(&self, ann: &DotAnnotations) -> String {
        let mut s = String::from("digraph dfg {\n  rankdir=TB;\n");
        for n in self.node_ids() {
            let node = self.node(n);
            let (mut label, shape) = match node.kind() {
                NodeKind::Input => {
                    (format!("{} : {}", node.name().unwrap_or("in"), node.width()), "invhouse")
                }
                NodeKind::Output => {
                    (format!("{} : {}", node.name().unwrap_or("out"), node.width()), "house")
                }
                NodeKind::Const(v) => (format!("{v}"), "box"),
                NodeKind::Op(op) => (format!("{op} : {}", node.width()), "circle"),
                NodeKind::Extension(t) => (format!("ext[{t}] : {}", node.width()), "diamond"),
            };
            if let Some(note) = get(&ann.node_notes, n.index()) {
                label.push_str("\\n");
                label.push_str(note);
            }
            let style = match get(&ann.node_fill, n.index()) {
                Some(color) => format!(", style=filled, fillcolor=\"{color}\""),
                None => String::new(),
            };
            let _ = writeln!(s, "  {n} [label=\"{label}\", shape={shape}{style}];");
        }
        for e in self.edge_ids() {
            let edge = self.edge(e);
            let t = if edge.signedness().is_signed() { "s" } else { "u" };
            let mut label = format!("{}{}", edge.width(), t);
            if let Some(note) = get(&ann.edge_notes, e.index()) {
                label.push_str("\\n");
                label.push_str(note);
            }
            let _ = writeln!(s, "  {} -> {} [label=\"{label}\"];", edge.src(), edge.dst());
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::{Dfg, OpKind};
    use dp_bitvec::{BitVec, Signedness::*};

    #[test]
    fn dot_mentions_every_node_and_edge() {
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let c = g.constant(BitVec::from_u64(4, 3));
        let m = g.op(OpKind::Mul, 8, &[(a, Signed), (c, Unsigned)]);
        let ext = g.extension(10, Signed, m, 8, Signed);
        g.output("r", 10, ext, Signed);
        let dot = g.to_dot();
        for n in g.node_ids() {
            assert!(dot.contains(&format!("{n} [")), "{n} missing");
        }
        assert_eq!(dot.matches(" -> ").count(), g.num_edges());
        assert!(dot.contains("ext[signed] : 10"));
        assert!(dot.contains("4'b0011"));
    }

    #[test]
    fn annotations_add_notes_and_fill() {
        use super::DotAnnotations;
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let n = g.op(OpKind::Add, 5, &[(a, Unsigned), (a, Unsigned)]);
        g.output("o", 5, n, Unsigned);
        let mut ann = DotAnnotations::for_graph(&g);
        ann.node_notes[n.index()] = Some("r=5 <4,u>".to_string());
        ann.node_fill[n.index()] = Some("#f4cccc".to_string());
        ann.edge_notes[0] = Some("IC-PRUNE-EDGE".to_string());
        let dot = g.to_dot_annotated(&ann);
        assert!(dot.contains("\\nr=5 <4,u>\""));
        assert!(dot.contains("style=filled, fillcolor=\"#f4cccc\""));
        assert!(dot.contains("\\nIC-PRUNE-EDGE\""));
        // Plain rendering is unchanged by the annotated code path.
        assert!(!g.to_dot().contains("filled"));
    }
}
