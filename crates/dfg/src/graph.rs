//! The [`Dfg`] container: nodes, edges, ports and their widths.
//!
//! Storage is struct-of-arrays (DESIGN.md §15): node and edge attributes
//! live in parallel typed arrays indexed by [`NodeId`]/[`EdgeId`], and the
//! per-node fanin/fanout lists live as regions inside two shared arena
//! pools. [`Dfg::node`]/[`Dfg::edge`] hand out lightweight `Copy` proxy
//! handles ([`Node`], [`Edge`]) whose accessors borrow straight from the
//! arrays, so hot loops never chase per-node heap allocations.

use std::fmt;

use dp_bitvec::{BitVec, Signedness};

use crate::OpKind;

/// Identifier of a node inside one [`Dfg`].
///
/// Node ids are dense indices assigned in creation order; they are never
/// invalidated (this crate's transformations rewire and resize rather than
/// delete).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// Identifier of an edge inside one [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The node id with the given dense index. Ids are only meaningful for
    /// the graph whose `num_nodes` exceeds `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index does not fit in `u32`.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("node index fits u32"))
    }
}

impl EdgeId {
    /// The dense index of this edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The edge id with the given dense index. Ids are only meaningful for
    /// the graph whose `num_edges` exceeds `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index does not fit in `u32`.
    pub fn from_index(index: usize) -> EdgeId {
        EdgeId(u32::try_from(index).expect("edge index fits u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// What a node is: the paper's node alphabet plus constants and the
/// extension nodes of Definition 5.5.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A primary input of the design.
    Input,
    /// A primary output of the design.
    Output,
    /// A constant signal (width is the node width).
    Const(BitVec),
    /// A datapath operator.
    Op(OpKind),
    /// An extension node (paper Definition 5.5): adapts its single operand
    /// to the node width, extending with the stored signedness when the
    /// node is wider than the incoming edge and truncating otherwise.
    Extension(Signedness),
}

impl NodeKind {
    /// Returns `true` for operator nodes (`Op`).
    pub fn is_op(&self) -> bool {
        matches!(self, NodeKind::Op(_))
    }

    /// Returns the operator if this is an operator node.
    pub fn op(&self) -> Option<OpKind> {
        match self {
            NodeKind::Op(op) => Some(*op),
            _ => None,
        }
    }
}

/// A region of one adjacency pool: `start..start + len` holds the live
/// edge ids, `start..start + cap` is reserved. Growing past `cap`
/// relocates the region to the end of the pool (amortized O(1) appends,
/// garbage bounded by the geometric growth).
#[derive(Debug, Clone, Copy, Default)]
struct Region {
    start: u32,
    len: u32,
    cap: u32,
}

/// Filler value for reserved-but-unused pool slots; never observable
/// through the public slice accessors.
const POOL_HOLE: EdgeId = EdgeId(u32::MAX);

/// A lightweight handle to one node: kind, width `w(N)`, optional name,
/// and its edge lists.
///
/// Handles are `Copy` and borrow the graph; every accessor returns data
/// with the graph's lifetime, so `g.node(n).in_edges()` hands out a slice
/// that outlives the temporary handle.
#[derive(Clone, Copy)]
pub struct Node<'a> {
    g: &'a Dfg,
    id: NodeId,
}

impl<'a> Node<'a> {
    /// The node kind.
    pub fn kind(self) -> &'a NodeKind {
        &self.g.kinds[self.id.index()]
    }

    /// The node width `w(N)`.
    pub fn width(self) -> usize {
        self.g.widths[self.id.index()] as usize
    }

    /// The node name, if one was given.
    pub fn name(self) -> Option<&'a str> {
        self.g.names[self.id.index()].as_deref()
    }

    /// Incoming edges, sorted by destination port.
    pub fn in_edges(self) -> &'a [EdgeId] {
        self.g.region_slice(&self.g.in_pool, self.g.in_adj[self.id.index()])
    }

    /// Outgoing edges, in creation order.
    pub fn out_edges(self) -> &'a [EdgeId] {
        self.g.region_slice(&self.g.out_pool, self.g.out_adj[self.id.index()])
    }
}

impl fmt::Debug for Node<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("kind", self.kind())
            .field("width", &self.width())
            .field("name", &self.name())
            .field("in_edges", &self.in_edges())
            .field("out_edges", &self.out_edges())
            .finish()
    }
}

/// A lightweight handle to one edge: data flowing from the source node's
/// output port to one input port of the destination node, carrying `w(e)`
/// bits with extension discipline `t(e)`.
///
/// Handles are `Copy` and borrow the graph, like [`Node`].
#[derive(Clone, Copy)]
pub struct Edge<'a> {
    g: &'a Dfg,
    id: EdgeId,
}

impl Edge<'_> {
    /// Source node.
    pub fn src(self) -> NodeId {
        self.g.srcs[self.id.index()]
    }

    /// Destination node.
    pub fn dst(self) -> NodeId {
        self.g.dsts[self.id.index()]
    }

    /// Input port index at the destination (0 or 1).
    pub fn dst_port(self) -> usize {
        self.g.ports[self.id.index()] as usize
    }

    /// Edge width `w(e)`.
    pub fn width(self) -> usize {
        self.g.ewidths[self.id.index()] as usize
    }

    /// Edge signedness `t(e)`.
    pub fn signedness(self) -> Signedness {
        self.g.esigns[self.id.index()]
    }
}

impl fmt::Debug for Edge<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Edge")
            .field("id", &self.id)
            .field("src", &self.src())
            .field("dst", &self.dst())
            .field("dst_port", &self.dst_port())
            .field("width", &self.width())
            .field("signedness", &self.signedness())
            .finish()
    }
}

/// A data flow graph with datapath operators (paper Section 2.1).
///
/// See the [crate documentation](crate) for the semantics and an example,
/// and DESIGN.md §15 for the struct-of-arrays representation contract.
#[derive(Debug, Clone, Default)]
pub struct Dfg {
    // --- node attribute arrays, indexed by NodeId ---
    kinds: Vec<NodeKind>,
    widths: Vec<u32>,
    names: Vec<Option<String>>,
    in_adj: Vec<Region>,
    out_adj: Vec<Region>,
    // --- adjacency arena pools ---
    in_pool: Vec<EdgeId>,
    out_pool: Vec<EdgeId>,
    // --- edge attribute arrays, indexed by EdgeId ---
    srcs: Vec<NodeId>,
    dsts: Vec<NodeId>,
    ports: Vec<u32>,
    ewidths: Vec<u32>,
    esigns: Vec<Signedness>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    /// Bumped on every *structural* mutation (node/edge creation, rewiring)
    /// but not on width/signedness updates — see [`Dfg::structure_version`].
    version: u64,
}

impl Dfg {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Dfg::default()
    }

    /// Creates an empty graph with storage preallocated for `nodes` nodes
    /// and `edges` edges — use when the final size is known (generators,
    /// bulk loaders) to avoid reallocation churn.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Dfg {
            kinds: Vec::with_capacity(nodes),
            widths: Vec::with_capacity(nodes),
            names: Vec::with_capacity(nodes),
            in_adj: Vec::with_capacity(nodes),
            out_adj: Vec::with_capacity(nodes),
            // Degree-2 regions are the common case; reserve accordingly.
            in_pool: Vec::with_capacity(edges.saturating_mul(2)),
            out_pool: Vec::with_capacity(edges.saturating_mul(2)),
            srcs: Vec::with_capacity(edges),
            dsts: Vec::with_capacity(edges),
            ports: Vec::with_capacity(edges),
            ewidths: Vec::with_capacity(edges),
            esigns: Vec::with_capacity(edges),
            inputs: Vec::new(),
            outputs: Vec::new(),
            version: 0,
        }
    }

    // ------------------------------------------------------------------
    // Adjacency arena plumbing
    // ------------------------------------------------------------------

    fn region_slice<'a>(&self, pool: &'a [EdgeId], r: Region) -> &'a [EdgeId] {
        &pool[r.start as usize..(r.start + r.len) as usize]
    }

    /// Relocates `r` to the end of `pool` with doubled capacity, copying
    /// its live elements. The old slots become garbage; geometric growth
    /// bounds total garbage by the live size.
    fn grow_region(pool: &mut Vec<EdgeId>, r: &mut Region) {
        let new_cap = (r.cap * 2).max(2);
        let new_start = u32::try_from(pool.len()).expect("adjacency pool fits u32");
        for i in 0..r.len {
            let v = pool[(r.start + i) as usize];
            pool.push(v);
        }
        pool.resize(new_start as usize + new_cap as usize, POOL_HOLE);
        r.start = new_start;
        r.cap = new_cap;
    }

    /// Inserts `e` at position `pos` of the region (shifting later
    /// elements), growing the region if it is full.
    fn region_insert(pool: &mut Vec<EdgeId>, r: &mut Region, pos: usize, e: EdgeId) {
        if r.len == r.cap {
            Dfg::grow_region(pool, r);
        }
        let start = r.start as usize;
        let len = r.len as usize;
        let mut i = len;
        while i > pos {
            pool[start + i] = pool[start + i - 1];
            i -= 1;
        }
        pool[start + pos] = e;
        r.len += 1;
    }

    /// Removes the first occurrence of `e` from the region, preserving the
    /// order of the remaining elements.
    fn region_remove(pool: &mut [EdgeId], r: &mut Region, e: EdgeId) {
        let start = r.start as usize;
        let len = r.len as usize;
        if let Some(pos) = pool[start..start + len].iter().position(|&x| x == e) {
            for i in pos..len - 1 {
                pool[start + i] = pool[start + i + 1];
            }
            r.len -= 1;
        }
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    fn add_node(&mut self, kind: NodeKind, width: usize, name: Option<String>) -> NodeId {
        assert!(width > 0, "node width must be at least 1");
        let id = NodeId(u32::try_from(self.kinds.len()).expect("node count fits u32"));
        self.kinds.push(kind);
        self.widths.push(u32::try_from(width).expect("node width fits u32"));
        self.names.push(name);
        self.in_adj.push(Region::default());
        self.out_adj.push(Region::default());
        self.version += 1;
        id
    }

    /// Adds a primary input of the given width.
    pub fn input(&mut self, name: impl Into<String>, width: usize) -> NodeId {
        let id = self.add_node(NodeKind::Input, width, Some(name.into()));
        self.inputs.push(id);
        id
    }

    /// Adds a constant node carrying `value`.
    pub fn constant(&mut self, value: BitVec) -> NodeId {
        let width = value.width();
        self.add_node(NodeKind::Const(value), width, None)
    }

    /// Adds an operator node of the given width, connecting `operands` in
    /// port order. Each operand edge gets width `w(src)` (carry the full
    /// source result) and the given signedness; use
    /// [`Dfg::op_with_edges`] for explicit edge widths.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match the operator's arity.
    pub fn op(&mut self, kind: OpKind, width: usize, operands: &[(NodeId, Signedness)]) -> NodeId {
        assert_eq!(
            operands.len(),
            kind.arity(),
            "operator {kind} takes {} operand(s)",
            kind.arity()
        );
        let id = self.add_node(NodeKind::Op(kind), width, None);
        for (port, &(src, t)) in operands.iter().enumerate() {
            let ew = self.node(src).width();
            self.connect(src, id, port, ew, t);
        }
        id
    }

    /// Adds an operator node with explicit `(source, edge width, edge
    /// signedness)` triples per port.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match the operator's arity, or
    /// if an edge width is zero.
    pub fn op_with_edges(
        &mut self,
        kind: OpKind,
        width: usize,
        operands: &[(NodeId, usize, Signedness)],
    ) -> NodeId {
        assert_eq!(
            operands.len(),
            kind.arity(),
            "operator {kind} takes {} operand(s)",
            kind.arity()
        );
        let id = self.add_node(NodeKind::Op(kind), width, None);
        for (port, &(src, ew, t)) in operands.iter().enumerate() {
            self.connect(src, id, port, ew, t);
        }
        id
    }

    /// Adds an operator node with **no operand edges**. The caller must
    /// [`Dfg::connect`] one edge per port before the graph validates; this
    /// is the escape hatch used by graph transformations and tests.
    pub fn op_unconnected(&mut self, kind: OpKind, width: usize) -> NodeId {
        self.add_node(NodeKind::Op(kind), width, None)
    }

    /// Adds a primary output of the given width fed by `src` over an edge of
    /// width `w(src)` and the given signedness.
    pub fn output(
        &mut self,
        name: impl Into<String>,
        width: usize,
        src: NodeId,
        signedness: Signedness,
    ) -> NodeId {
        let ew = self.node(src).width();
        self.output_with_edge(name, width, src, ew, signedness)
    }

    /// Adds a primary output with an explicit edge width.
    pub fn output_with_edge(
        &mut self,
        name: impl Into<String>,
        width: usize,
        src: NodeId,
        edge_width: usize,
        signedness: Signedness,
    ) -> NodeId {
        let id = self.add_node(NodeKind::Output, width, Some(name.into()));
        self.outputs.push(id);
        self.connect(src, id, 0, edge_width, signedness);
        id
    }

    /// Adds an extension node (Definition 5.5) of the given width and
    /// signedness fed by `src` over an edge of width `edge_width`.
    pub fn extension(
        &mut self,
        width: usize,
        signedness: Signedness,
        src: NodeId,
        edge_width: usize,
        edge_signedness: Signedness,
    ) -> NodeId {
        let id = self.add_node(NodeKind::Extension(signedness), width, None);
        self.connect(src, id, 0, edge_width, edge_signedness);
        id
    }

    /// Adds a raw edge. Prefer the typed constructors above; this is the
    /// escape hatch used by graph transformations.
    ///
    /// # Panics
    ///
    /// Panics if the edge width is zero or a node id is out of range.
    pub fn connect(
        &mut self,
        src: NodeId,
        dst: NodeId,
        dst_port: usize,
        width: usize,
        signedness: Signedness,
    ) -> EdgeId {
        assert!(width > 0, "edge width must be at least 1");
        assert!(src.index() < self.kinds.len(), "source node out of range");
        assert!(dst.index() < self.kinds.len(), "destination node out of range");
        let id = EdgeId(u32::try_from(self.srcs.len()).expect("edge count fits u32"));
        self.srcs.push(src);
        self.dsts.push(dst);
        self.ports.push(u32::try_from(dst_port).expect("port fits u32"));
        self.ewidths.push(u32::try_from(width).expect("edge width fits u32"));
        self.esigns.push(signedness);
        // Out-edges append in creation order.
        let out = &mut self.out_adj[src.index()];
        Dfg::region_insert(&mut self.out_pool, out, out.len as usize, id);
        // In-edges stay sorted by destination port.
        let r = self.in_adj[dst.index()];
        let slice = self.region_slice(&self.in_pool, r);
        let pos = slice
            .iter()
            .position(|&e| self.ports[e.index()] as usize > dst_port)
            .unwrap_or(slice.len());
        Dfg::region_insert(&mut self.in_pool, &mut self.in_adj[dst.index()], pos, id);
        self.version += 1;
        id
    }

    /// A counter bumped on every structural mutation: node creation, edge
    /// creation, and [`Dfg::rewire_edge_src`]. Width and signedness updates
    /// do **not** bump it — adjacency caches like [`crate::DfgView`] stay
    /// valid across them. Two equal versions on the *same* graph value mean
    /// the node/edge sets and their connectivity are unchanged.
    pub fn structure_version(&self) -> u64 {
        self.version
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// A handle to the node with the given id.
    ///
    /// # Panics
    ///
    /// Accessors on the returned handle panic if the id is out of range.
    pub fn node(&self, id: NodeId) -> Node<'_> {
        Node { g: self, id }
    }

    /// A handle to the edge with the given id.
    ///
    /// # Panics
    ///
    /// Accessors on the returned handle panic if the id is out of range.
    pub fn edge(&self, id: EdgeId) -> Edge<'_> {
        Edge { g: self, id }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.srcs.len()
    }

    /// All node ids in creation order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.kinds.len() as u32).map(NodeId)
    }

    /// All edge ids in creation order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.srcs.len() as u32).map(EdgeId)
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Operator node ids in creation order.
    pub fn op_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&n| self.kinds[n.index()].is_op())
    }

    /// The incoming edge feeding `port` of `node`, if any.
    pub fn in_edge_on_port(&self, node: NodeId, port: usize) -> Option<EdgeId> {
        self.node(node).in_edges().iter().copied().find(|&e| self.ports[e.index()] as usize == port)
    }

    /// Successor node ids of `node` (one per out-edge; may repeat).
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.node(node).out_edges().iter().map(move |&e| self.dsts[e.index()])
    }

    /// Predecessor node ids of `node` in port order (may repeat).
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.node(node).in_edges().iter().map(move |&e| self.srcs[e.index()])
    }

    // ------------------------------------------------------------------
    // Mutation (used by width-pruning transformations)
    // ------------------------------------------------------------------

    /// Sets `w(N)`.
    ///
    /// # Panics
    ///
    /// Panics if the new width is zero.
    pub fn set_node_width(&mut self, id: NodeId, width: usize) {
        assert!(width > 0, "node width must be at least 1");
        self.widths[id.index()] = u32::try_from(width).expect("node width fits u32");
    }

    /// Sets `w(e)`.
    ///
    /// # Panics
    ///
    /// Panics if the new width is zero.
    pub fn set_edge_width(&mut self, id: EdgeId, width: usize) {
        assert!(width > 0, "edge width must be at least 1");
        self.ewidths[id.index()] = u32::try_from(width).expect("edge width fits u32");
    }

    /// Sets `t(e)`.
    pub fn set_edge_signedness(&mut self, id: EdgeId, signedness: Signedness) {
        self.esigns[id.index()] = signedness;
    }

    /// Redirects an edge to flow from a different source node, preserving
    /// its destination, width and signedness. Used when splicing extension
    /// nodes into existing fanout (Lemma 5.6).
    pub fn rewire_edge_src(&mut self, id: EdgeId, new_src: NodeId) {
        let old_src = self.srcs[id.index()];
        Dfg::region_remove(&mut self.out_pool, &mut self.out_adj[old_src.index()], id);
        self.srcs[id.index()] = new_src;
        let out = &mut self.out_adj[new_src.index()];
        Dfg::region_insert(&mut self.out_pool, out, out.len as usize, id);
        self.version += 1;
    }

    // ------------------------------------------------------------------
    // Structure queries
    // ------------------------------------------------------------------

    /// Returns `true` if the graph is weakly connected (ignoring edge
    /// direction). The paper requires designs to be connected; generated
    /// subgraphs may not be.
    pub fn is_connected(&self) -> bool {
        if self.kinds.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.kinds.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            let node = self.node(n);
            let neighbours = node
                .in_edges()
                .iter()
                .map(|&e| self.srcs[e.index()])
                .chain(node.out_edges().iter().map(|&e| self.dsts[e.index()]));
            for m in neighbours {
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    count += 1;
                    stack.push(m);
                }
            }
        }
        count == self.kinds.len()
    }

    /// Total bit-width of all operator nodes: a quick structural size proxy
    /// used in reports.
    pub fn total_op_width(&self) -> usize {
        self.op_nodes().map(|n| self.node(n).width()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_bitvec::Signedness::*;

    fn tiny() -> (Dfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let b = g.input("b", 4);
        let s = g.op(OpKind::Add, 5, &[(a, Unsigned), (b, Unsigned)]);
        let o = g.output("o", 5, s, Unsigned);
        (g, a, b, s, o)
    }

    #[test]
    fn construction_and_accessors() {
        let (g, a, b, s, o) = tiny();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.inputs(), &[a, b]);
        assert_eq!(g.outputs(), &[o]);
        assert_eq!(g.node(s).width(), 5);
        assert_eq!(g.node(s).kind().op(), Some(OpKind::Add));
        assert_eq!(g.op_nodes().collect::<Vec<_>>(), vec![s]);
        assert_eq!(g.node(a).name(), Some("a"));
        assert!(g.is_connected());
    }

    #[test]
    fn edges_default_to_source_width() {
        let (g, a, _, s, _) = tiny();
        let e = g.in_edge_on_port(s, 0).unwrap();
        assert_eq!(g.edge(e).src(), a);
        assert_eq!(g.edge(e).width(), 4);
        assert_eq!(g.edge(e).dst_port(), 0);
    }

    #[test]
    fn in_edges_sorted_by_port() {
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let b = g.input("b", 4);
        let n = g.add_node(NodeKind::Op(OpKind::Sub), 5, None);
        // Connect port 1 first, then port 0; in_edges must come back sorted.
        g.connect(b, n, 1, 4, Unsigned);
        g.connect(a, n, 0, 4, Unsigned);
        let ports: Vec<usize> =
            g.node(n).in_edges().iter().map(|&e| g.edge(e).dst_port()).collect();
        assert_eq!(ports, vec![0, 1]);
    }

    #[test]
    fn successors_and_predecessors() {
        let (g, a, b, s, o) = tiny();
        assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![s]);
        assert_eq!(g.predecessors(s).collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(g.successors(s).collect::<Vec<_>>(), vec![o]);
    }

    #[test]
    fn mutation_roundtrip() {
        let (mut g, _, _, s, _) = tiny();
        g.set_node_width(s, 3);
        assert_eq!(g.node(s).width(), 3);
        let e = g.in_edge_on_port(s, 0).unwrap();
        g.set_edge_width(e, 2);
        g.set_edge_signedness(e, Signed);
        assert_eq!(g.edge(e).width(), 2);
        assert_eq!(g.edge(e).signedness(), Signed);
    }

    #[test]
    fn rewire_edge_src_moves_fanout() {
        let (mut g, a, _, s, _) = tiny();
        let ext = g.extension(8, Signed, a, 4, Unsigned);
        let e = g.in_edge_on_port(s, 0).unwrap();
        g.rewire_edge_src(e, ext);
        assert_eq!(g.edge(e).src(), ext);
        assert_eq!(g.successors(ext).collect::<Vec<_>>(), vec![s]);
        assert!(!g.node(a).out_edges().contains(&e));
    }

    #[test]
    fn rewire_preserves_out_edge_order() {
        // A node with three out-edges loses the middle one: the remaining
        // two must keep their relative creation order.
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let n1 = g.op(OpKind::Neg, 4, &[(a, Unsigned)]);
        let n2 = g.op(OpKind::Neg, 4, &[(a, Unsigned)]);
        let n3 = g.op(OpKind::Neg, 4, &[(a, Unsigned)]);
        let outs: Vec<EdgeId> = g.node(a).out_edges().to_vec();
        assert_eq!(outs.len(), 3);
        let ext = g.extension(4, Unsigned, a, 4, Unsigned);
        let mid = g.in_edge_on_port(n2, 0).unwrap();
        g.rewire_edge_src(mid, ext);
        let kept: Vec<EdgeId> = outs.iter().copied().filter(|&e| e != mid).collect();
        // a's list = [kept..., ext-feed edge]; order among kept preserved.
        let now = g.node(a).out_edges();
        assert_eq!(&now[..2], kept.as_slice());
        assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![n1, n3, ext]);
        let _ = (n2, n3);
    }

    #[test]
    fn constant_nodes_carry_their_value() {
        let mut g = Dfg::new();
        let c = g.constant(dp_bitvec::BitVec::from_u64(6, 37));
        assert_eq!(g.node(c).width(), 6);
        assert!(matches!(g.node(c).kind(), NodeKind::Const(v) if v.to_u64() == Some(37)));
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut g = Dfg::new();
        let _a = g.input("a", 4);
        let _b = g.input("b", 4);
        assert!(!g.is_connected());
    }

    #[test]
    fn with_capacity_matches_default_construction() {
        let mut g = Dfg::with_capacity(4, 3);
        let a = g.input("a", 4);
        let b = g.input("b", 4);
        let s = g.op(OpKind::Add, 5, &[(a, Unsigned), (b, Unsigned)]);
        let o = g.output("o", 5, s, Unsigned);
        let (h, ha, hb, hs, ho) = tiny();
        assert_eq!((a, b, s, o), (ha, hb, hs, ho));
        assert_eq!(g.num_nodes(), h.num_nodes());
        assert_eq!(g.num_edges(), h.num_edges());
        for n in g.node_ids() {
            assert_eq!(g.node(n).in_edges(), h.node(n).in_edges());
            assert_eq!(g.node(n).out_edges(), h.node(n).out_edges());
        }
    }

    #[test]
    #[should_panic(expected = "takes 2 operand")]
    fn wrong_arity_panics() {
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let _ = g.op(OpKind::Add, 5, &[(a, Unsigned)]);
    }
}
