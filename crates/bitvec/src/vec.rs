//! The [`BitVec`] type: a fixed-width two's-complement bit pattern with a
//! tiered, allocation-free-when-narrow representation.
//!
//! See `DESIGN.md` §13 for the normative representation contract. In
//! short: widths `1..=64` live inline in a `u64`, widths `65..=128` inline
//! in a `u128`, and only widths above 128 bits fall back to heap-allocated
//! limbs. The tier is a pure function of the width, bits at positions at
//! or above the width are always zero (canonical form), and every
//! operation on widths `<= 128` is allocation-free.

use std::cmp::Ordering;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::{core_big, core_mixed, core_u128, core_u64, Signedness};

/// The storage tier of a [`BitVec`] — a pure function of its width.
///
/// # Examples
///
/// ```
/// use dp_bitvec::{BitVec, Tier};
///
/// assert_eq!(BitVec::zero(64).tier(), Tier::Small);
/// assert_eq!(BitVec::zero(65).tier(), Tier::Mid);
/// assert_eq!(BitVec::zero(128).tier(), Tier::Mid);
/// assert_eq!(BitVec::zero(129).tier(), Tier::Big);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Widths `1..=64`: inline `u64`, no allocation.
    Small,
    /// Widths `65..=128`: inline `u128`, no allocation.
    Mid,
    /// Widths above 128: heap-allocated little-endian `u64` limbs.
    Big,
}

/// The tiered storage. Each variant carries the width so the whole value
/// stays one word-pair-sized enum; the variant is always the one
/// [`Tier`] prescribes for the width, and bit positions at or above the
/// width are zero (canonical form) in every variant.
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) enum Repr {
    /// Widths 1..=64.
    Small {
        /// Number of significant bits.
        width: u32,
        /// The value; bits `width..64` are zero.
        bits: u64,
    },
    /// Widths 65..=128.
    Mid {
        /// Number of significant bits.
        width: u32,
        /// The value; bits `width..128` are zero.
        bits: u128,
    },
    /// Widths above 128.
    Big {
        /// Number of significant bits.
        width: u32,
        /// Exactly `width.div_ceil(64)` little-endian limbs; bits at or
        /// above `width` are zero.
        limbs: Box<[u64]>,
    },
}

/// A fixed-width vector of bits with two's-complement semantics.
///
/// See the [crate documentation](crate) for the design rationale and
/// `DESIGN.md` §13 for the representation contract. The width is always at
/// least one bit. Bits are indexed from the least significant (`bit(0)`)
/// to the most significant (`bit(width - 1)`).
///
/// # Examples
///
/// ```
/// use dp_bitvec::BitVec;
///
/// let v = BitVec::from_u64(6, 0b10_1101);
/// assert_eq!(v.width(), 6);
/// assert!(v.bit(0) && !v.bit(1) && v.bit(5));
/// assert_eq!(v.to_u64(), Some(45));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    repr: Repr,
}

impl BitVec {
    // ------------------------------------------------------------------
    // Internal accessors
    // ------------------------------------------------------------------

    /// Internal width as the packed `u32`.
    #[inline]
    pub(crate) fn w(&self) -> u32 {
        match &self.repr {
            Repr::Small { width, .. } | Repr::Mid { width, .. } | Repr::Big { width, .. } => *width,
        }
    }

    /// The low 64 bits of the value (exact for widths `<= 64`).
    #[inline]
    pub(crate) fn low_u64(&self) -> u64 {
        match &self.repr {
            Repr::Small { bits, .. } => *bits,
            Repr::Mid { bits, .. } => *bits as u64,
            Repr::Big { limbs, .. } => core_big::limb(limbs, 0),
        }
    }

    /// The low 128 bits of the value (exact for widths `<= 128`).
    #[inline]
    pub(crate) fn low_u128(&self) -> u128 {
        match &self.repr {
            Repr::Small { bits, .. } => *bits as u128,
            Repr::Mid { bits, .. } => *bits,
            Repr::Big { limbs, .. } => {
                (core_big::limb(limbs, 0) as u128) | ((core_big::limb(limbs, 1) as u128) << 64)
            }
        }
    }

    /// The signed reading as an `i128`; exact whenever `width <= 128`
    /// (callers on the `Big` tier must pre-check the width).
    #[inline]
    pub(crate) fn to_i128_lossless(&self) -> i128 {
        match &self.repr {
            Repr::Small { width, bits } => core_u64::to_i64(*width, *bits) as i128,
            Repr::Mid { width, bits } => core_u128::to_i128(*width, *bits),
            Repr::Big { .. } => self.low_u128() as i128,
        }
    }

    /// Runs `f` over the value as little-endian limbs without allocating:
    /// inline tiers are exposed as one- or two-limb stack arrays.
    #[inline]
    pub(crate) fn with_limbs<R>(&self, f: impl FnOnce(&[u64]) -> R) -> R {
        match &self.repr {
            Repr::Small { bits, .. } => f(&[*bits]),
            Repr::Mid { bits, .. } => f(&[*bits as u64, (*bits >> 64) as u64]),
            Repr::Big { limbs, .. } => f(limbs),
        }
    }

    /// Wraps a canonical representation produced by a kernel.
    #[inline]
    pub(crate) fn from_repr(repr: Repr) -> Self {
        BitVec { repr }
    }

    /// Validates and narrows a public `usize` width.
    fn checked_width(width: usize) -> u32 {
        assert!(width > 0, "BitVec width must be at least 1");
        assert!(
            u32::try_from(width).is_ok(),
            "BitVec width {width} exceeds the 2^32 - 1 bit representation limit"
        );
        width as u32
    }

    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates an all-zero vector of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert!(BitVec::zero(17).is_zero());
    /// assert!(BitVec::zero(200).is_zero());
    /// ```
    pub fn zero(width: usize) -> Self {
        let width = Self::checked_width(width);
        let repr = if width <= 64 {
            Repr::Small { width, bits: 0 }
        } else if width <= 128 {
            Repr::Mid { width, bits: 0 }
        } else {
            Repr::Big { width, limbs: core_big::zero(width) }
        };
        BitVec { repr }
    }

    /// Creates an all-ones vector of the given width (the unsigned maximum,
    /// or `-1` as a signed value).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::ones(5).to_i64(), Some(-1));
    /// assert_eq!(BitVec::ones(5).to_u64(), Some(31));
    /// assert_eq!(BitVec::ones(130).to_i128(), Some(-1));
    /// ```
    pub fn ones(width: usize) -> Self {
        let width = Self::checked_width(width);
        let repr = if width <= 64 {
            Repr::Small { width, bits: core_u64::mask(width) }
        } else if width <= 128 {
            Repr::Mid { width, bits: core_u128::mask(width) }
        } else {
            Repr::Big { width, limbs: core_big::ones(width) }
        };
        BitVec { repr }
    }

    /// Creates a vector of the given width from an unsigned value.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or if `value` does not fit in `width` bits.
    /// Use [`BitVec::from_u64_wrapping`] to truncate instead.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::from_u64(8, 200).to_u64(), Some(200));
    /// ```
    pub fn from_u64(width: usize, value: u64) -> Self {
        let v = Self::from_u64_wrapping(width, value);
        assert_eq!(
            v.to_u128(),
            Some(value as u128),
            "value {value} does not fit in {width} unsigned bits"
        );
        v
    }

    /// Creates a vector of the given width from the low `width` bits of an
    /// unsigned value, discarding the rest.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::from_u64_wrapping(4, 0xFF).to_u64(), Some(15));
    /// ```
    pub fn from_u64_wrapping(width: usize, value: u64) -> Self {
        let width = Self::checked_width(width);
        let repr = if width <= 64 {
            Repr::Small { width, bits: value & core_u64::mask(width) }
        } else if width <= 128 {
            Repr::Mid { width, bits: value as u128 }
        } else {
            let mut limbs = core_big::zero(width);
            limbs[0] = value;
            Repr::Big { width, limbs }
        };
        BitVec { repr }
    }

    /// Creates a vector of the given width from a signed value
    /// (two's-complement encoding).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or if `value` does not fit in `width` signed
    /// bits. Use [`BitVec::from_i64_wrapping`] to truncate instead.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::from_i64(4, -8).to_i64(), Some(-8));
    /// ```
    pub fn from_i64(width: usize, value: i64) -> Self {
        let v = Self::from_i64_wrapping(width, value);
        assert_eq!(
            v.to_i128(),
            Some(value as i128),
            "value {value} does not fit in {width} signed bits"
        );
        v
    }

    /// Creates a vector of the given width from the low `width` bits of a
    /// signed value's two's-complement encoding.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::from_i64_wrapping(4, -9).to_u64(), Some(7));
    /// ```
    pub fn from_i64_wrapping(width: usize, value: i64) -> Self {
        let width = Self::checked_width(width);
        let repr = if width <= 64 {
            Repr::Small { width, bits: (value as u64) & core_u64::mask(width) }
        } else if width <= 128 {
            Repr::Mid { width, bits: (value as i128 as u128) & core_u128::mask(width) }
        } else {
            let fill = if value < 0 { u64::MAX } else { 0 };
            let mut limbs: Box<[u64]> = (0..core_big::limbs_for(width)).map(|_| fill).collect();
            limbs[0] = value as u64;
            core_big::mask_top(width, &mut limbs);
            Repr::Big { width, limbs }
        };
        BitVec { repr }
    }

    /// Creates a vector by sampling each bit from a closure
    /// (`f(i)` supplies bit `i`; called once per bit, in increasing order).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// let alt = BitVec::from_fn(6, |i| i % 2 == 0);
    /// assert_eq!(alt.to_u64(), Some(0b010101));
    /// ```
    pub fn from_fn(width: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let w = Self::checked_width(width);
        let repr = if w <= 64 {
            let mut bits = 0u64;
            for i in 0..width {
                if f(i) {
                    bits |= 1u64 << i;
                }
            }
            Repr::Small { width: w, bits }
        } else if w <= 128 {
            let mut bits = 0u128;
            for i in 0..width {
                if f(i) {
                    bits |= 1u128 << i;
                }
            }
            Repr::Mid { width: w, bits }
        } else {
            let mut limbs = core_big::zero(w);
            for i in 0..width {
                if f(i) {
                    limbs[i / 64] |= 1u64 << (i % 64);
                }
            }
            Repr::Big { width: w, limbs }
        };
        BitVec { repr }
    }

    /// Creates a vector from bits listed least-significant first.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// let v = BitVec::from_bits(&[true, false, true]); // 3'b101
    /// assert_eq!(v.to_u64(), Some(5));
    /// ```
    pub fn from_bits(bits: &[bool]) -> Self {
        assert!(!bits.is_empty(), "BitVec must have at least one bit");
        BitVec::from_fn(bits.len(), |i| bits[i])
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The width in bits (always at least 1).
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::zero(17).width(), 17);
    /// ```
    pub fn width(&self) -> usize {
        self.w() as usize
    }

    /// The storage tier this value uses — `Small`/`Mid` are inline and
    /// allocation-free, `Big` is the boxed fallback. The tier depends only
    /// on the width, never on the value.
    ///
    /// ```
    /// use dp_bitvec::{BitVec, Tier};
    /// assert_eq!(BitVec::ones(33).tier(), Tier::Small);
    /// assert_eq!(BitVec::ones(128).tier(), Tier::Mid);
    /// assert_eq!(BitVec::ones(129).tier(), Tier::Big);
    /// ```
    pub fn tier(&self) -> Tier {
        match &self.repr {
            Repr::Small { .. } => Tier::Small,
            Repr::Mid { .. } => Tier::Mid,
            Repr::Big { .. } => Tier::Big,
        }
    }

    /// Bit `i` (little-endian: bit 0 is the least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert!(BitVec::from_u64(4, 0b0100).bit(2));
    /// ```
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.width(), "bit index {i} out of range for width {}", self.width());
        match &self.repr {
            Repr::Small { bits, .. } => (bits >> i) & 1 == 1,
            Repr::Mid { bits, .. } => (bits >> i) & 1 == 1,
            Repr::Big { limbs, .. } => (core_big::limb(limbs, i / 64) >> (i % 64)) & 1 == 1,
        }
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// let mut v = BitVec::zero(9);
    /// v.set_bit(8, true);
    /// assert_eq!(v.to_u64(), Some(256));
    /// ```
    pub fn set_bit(&mut self, i: usize, value: bool) {
        assert!(i < self.width(), "bit index {i} out of range for width {}", self.width());
        match &mut self.repr {
            Repr::Small { bits, .. } => {
                if value {
                    *bits |= 1u64 << i;
                } else {
                    *bits &= !(1u64 << i);
                }
            }
            Repr::Mid { bits, .. } => {
                if value {
                    *bits |= 1u128 << i;
                } else {
                    *bits &= !(1u128 << i);
                }
            }
            Repr::Big { limbs, .. } => {
                let mask = 1u64 << (i % 64);
                if value {
                    limbs[i / 64] |= mask;
                } else {
                    limbs[i / 64] &= !mask;
                }
            }
        }
    }

    /// The most significant bit — the sign bit under a signed reading.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert!(BitVec::from_i64(4, -1).msb());
    /// ```
    pub fn msb(&self) -> bool {
        self.bit(self.width() - 1)
    }

    /// Returns `true` if every bit is zero.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert!(BitVec::zero(200).is_zero());
    /// assert!(!BitVec::ones(200).is_zero());
    /// ```
    pub fn is_zero(&self) -> bool {
        match &self.repr {
            Repr::Small { bits, .. } => *bits == 0,
            Repr::Mid { bits, .. } => *bits == 0,
            Repr::Big { limbs, .. } => limbs.iter().all(|&l| l == 0),
        }
    }

    /// Returns `true` if every bit is one.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert!(BitVec::ones(65).is_all_ones());
    /// assert!(!BitVec::zero(65).is_all_ones());
    /// ```
    pub fn is_all_ones(&self) -> bool {
        match &self.repr {
            Repr::Small { width, bits } => *bits == core_u64::mask(*width),
            Repr::Mid { width, bits } => *bits == core_u128::mask(*width),
            Repr::Big { width, limbs } => limbs
                .iter()
                .enumerate()
                .all(|(k, &l)| l == core_big::fill_limb(u64::MAX, *width, k)),
        }
    }

    /// Bits listed least-significant first.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::from_u64(3, 0b110).to_bits(), vec![false, true, true]);
    /// ```
    pub fn to_bits(&self) -> Vec<bool> {
        (0..self.width()).map(|i| self.bit(i)).collect()
    }

    /// The unsigned value, if it fits in a `u64`.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::ones(65).to_u64(), None);
    /// assert_eq!(BitVec::from_u64(65, 7).to_u64(), Some(7));
    /// ```
    pub fn to_u64(&self) -> Option<u64> {
        match &self.repr {
            Repr::Small { bits, .. } => Some(*bits),
            Repr::Mid { bits, .. } => u64::try_from(*bits).ok(),
            Repr::Big { limbs, .. } => {
                if limbs[1..].iter().any(|&l| l != 0) {
                    None
                } else {
                    Some(limbs[0])
                }
            }
        }
    }

    /// The unsigned value, if it fits in a `u128`.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::ones(128).to_u128(), Some(u128::MAX));
    /// assert_eq!(BitVec::ones(129).to_u128(), None);
    /// ```
    pub fn to_u128(&self) -> Option<u128> {
        match &self.repr {
            Repr::Small { bits, .. } => Some(*bits as u128),
            Repr::Mid { bits, .. } => Some(*bits),
            Repr::Big { limbs, .. } => {
                if limbs.len() > 2 && limbs[2..].iter().any(|&l| l != 0) {
                    None
                } else {
                    Some(self.low_u128())
                }
            }
        }
    }

    /// The signed (two's-complement) value, if it fits in an `i64`.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::ones(100).to_i64(), Some(-1));
    /// ```
    pub fn to_i64(&self) -> Option<i64> {
        self.to_i128().and_then(|v| i64::try_from(v).ok())
    }

    /// The signed (two's-complement) value, if it fits in an `i128`.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::from_i64(128, -5).to_i128(), Some(-5));
    /// assert_eq!(BitVec::ones(200).to_i128(), Some(-1));
    /// ```
    pub fn to_i128(&self) -> Option<i128> {
        match &self.repr {
            Repr::Small { .. } | Repr::Mid { .. } => Some(self.to_i128_lossless()),
            Repr::Big { .. } => {
                // Exact iff the value sign-extends from its low 128 bits.
                if self.min_signed_width() <= 128 {
                    Some(self.low_u128() as i128)
                } else {
                    None
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Width changes (paper Definition 2.1 + truncation)
    // ------------------------------------------------------------------

    /// Keeps the `new_width` least significant bits, demoting the storage
    /// tier when the new width crosses an inline boundary.
    ///
    /// # Panics
    ///
    /// Panics if `new_width == 0` or `new_width > self.width()`.
    ///
    /// ```
    /// use dp_bitvec::{BitVec, Tier};
    /// assert_eq!(BitVec::from_u64(8, 0b1010_1100).trunc(4).to_u64(), Some(0b1100));
    /// // Truncating across the 128-bit boundary demotes Big to Mid.
    /// let wide = BitVec::ones(150);
    /// assert_eq!(wide.trunc(100).tier(), Tier::Mid);
    /// ```
    pub fn trunc(&self, new_width: usize) -> Self {
        assert!(new_width > 0, "BitVec width must be at least 1");
        assert!(
            new_width <= self.width(),
            "trunc to {new_width} from narrower width {}",
            self.width()
        );
        BitVec::from_repr(core_mixed::trunc(self, new_width as u32))
    }

    /// Zero-extends to `new_width` (the paper's *unsigned extension*),
    /// promoting the storage tier when the new width crosses an inline
    /// boundary.
    ///
    /// # Panics
    ///
    /// Panics if `new_width < self.width()`.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::from_u64(4, 0b1001).zext(8).to_u64(), Some(0b0000_1001));
    /// // Crossing the u64 boundary: the value is unchanged.
    /// assert_eq!(BitVec::ones(64).zext(65).to_u128(), Some(u64::MAX as u128));
    /// ```
    pub fn zext(&self, new_width: usize) -> Self {
        assert!(new_width >= self.width(), "zext to {new_width} from wider width {}", self.width());
        let new_width = Self::checked_width(new_width);
        BitVec::from_repr(core_mixed::zext(self, new_width))
    }

    /// Sign-extends to `new_width` (the paper's *signed extension*): pads
    /// with copies of the most significant bit.
    ///
    /// # Panics
    ///
    /// Panics if `new_width < self.width()`.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::from_u64(4, 0b1001).sext(8).to_u64(), Some(0b1111_1001));
    /// // Crossing the u64 boundary: the signed value is unchanged.
    /// assert_eq!(BitVec::from_i64(64, -7).sext(100).to_i128(), Some(-7));
    /// ```
    pub fn sext(&self, new_width: usize) -> Self {
        assert!(new_width >= self.width(), "sext to {new_width} from wider width {}", self.width());
        let new_width = Self::checked_width(new_width);
        BitVec::from_repr(core_mixed::sext(self, new_width))
    }

    /// Extends to `new_width` using the given discipline.
    ///
    /// # Panics
    ///
    /// Panics if `new_width < self.width()`.
    ///
    /// ```
    /// use dp_bitvec::{BitVec, Signedness};
    /// let v = BitVec::from_u64(4, 0b1001);
    /// assert_eq!(v.extend(Signedness::Unsigned, 8).to_u64(), Some(0b0000_1001));
    /// assert_eq!(v.extend(Signedness::Signed, 8).to_u64(), Some(0b1111_1001));
    /// ```
    pub fn extend(&self, signedness: Signedness, new_width: usize) -> Self {
        match signedness {
            Signedness::Unsigned => self.zext(new_width),
            Signedness::Signed => self.sext(new_width),
        }
    }

    /// Adapts to `new_width`: truncates if narrower, extends with the given
    /// discipline if wider. This is exactly the width-adaptation rule of the
    /// paper's Section 2.2 for carrying a signal across an edge or into a
    /// port of different width.
    ///
    /// # Panics
    ///
    /// Panics if `new_width == 0`.
    ///
    /// ```
    /// use dp_bitvec::{BitVec, Signedness};
    /// let v = BitVec::from_u64(6, 0b10_0001);
    /// assert_eq!(v.resize(Signedness::Signed, 8).to_u64(), Some(0b1110_0001));
    /// assert_eq!(v.resize(Signedness::Signed, 4).to_u64(), Some(0b0001));
    /// ```
    pub fn resize(&self, signedness: Signedness, new_width: usize) -> Self {
        if new_width <= self.width() {
            self.trunc(new_width)
        } else {
            self.extend(signedness, new_width)
        }
    }

    // ------------------------------------------------------------------
    // Arithmetic (modular at the common width)
    // ------------------------------------------------------------------

    /// Modular addition at the common width (low `width` bits of the sum).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// let a = BitVec::from_u64(4, 11);
    /// let b = BitVec::from_u64(4, 8);
    /// assert_eq!(a.wrapping_add(&b).to_u64(), Some(3)); // 19 mod 16
    /// ```
    pub fn wrapping_add(&self, rhs: &BitVec) -> Self {
        self.check_same_width(rhs, "wrapping_add");
        let repr = match &self.repr {
            Repr::Small { width, bits } => {
                Repr::Small { width: *width, bits: core_u64::add(*width, *bits, rhs.low_u64()) }
            }
            Repr::Mid { width, bits } => {
                Repr::Mid { width: *width, bits: core_u128::add(*width, *bits, rhs.low_u128()) }
            }
            Repr::Big { width, limbs } => rhs.with_limbs(|bl| Repr::Big {
                width: *width,
                limbs: core_big::add(*width, limbs, bl),
            }),
        };
        BitVec { repr }
    }

    /// Modular subtraction at the common width.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// let a = BitVec::from_u64(4, 3);
    /// let b = BitVec::from_u64(4, 5);
    /// assert_eq!(a.wrapping_sub(&b).to_i64(), Some(-2));
    /// ```
    pub fn wrapping_sub(&self, rhs: &BitVec) -> Self {
        self.check_same_width(rhs, "wrapping_sub");
        let repr = match &self.repr {
            Repr::Small { width, bits } => {
                Repr::Small { width: *width, bits: core_u64::sub(*width, *bits, rhs.low_u64()) }
            }
            Repr::Mid { width, bits } => {
                Repr::Mid { width: *width, bits: core_u128::sub(*width, *bits, rhs.low_u128()) }
            }
            Repr::Big { width, limbs } => rhs.with_limbs(|bl| Repr::Big {
                width: *width,
                limbs: core_big::sub(*width, limbs, bl),
            }),
        };
        BitVec { repr }
    }

    /// Modular two's-complement negation at the same width.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::from_i64(5, 7).wrapping_neg().to_i64(), Some(-7));
    /// // The signed minimum negates to itself, as in hardware.
    /// assert_eq!(BitVec::from_i64(4, -8).wrapping_neg().to_i64(), Some(-8));
    /// ```
    pub fn wrapping_neg(&self) -> Self {
        let repr = match &self.repr {
            Repr::Small { width, bits } => {
                Repr::Small { width: *width, bits: core_u64::neg(*width, *bits) }
            }
            Repr::Mid { width, bits } => {
                Repr::Mid { width: *width, bits: core_u128::neg(*width, *bits) }
            }
            Repr::Big { width, limbs } => {
                Repr::Big { width: *width, limbs: core_big::neg(*width, limbs) }
            }
        };
        BitVec { repr }
    }

    /// Modular multiplication at the common width (low `width` bits of the
    /// full product).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// let a = BitVec::from_u64(4, 13);
    /// let b = BitVec::from_u64(4, 11);
    /// assert_eq!(a.wrapping_mul(&b).to_u64(), Some((13 * 11) % 16));
    /// ```
    pub fn wrapping_mul(&self, rhs: &BitVec) -> Self {
        self.check_same_width(rhs, "wrapping_mul");
        let repr = match &self.repr {
            Repr::Small { width, bits } => {
                Repr::Small { width: *width, bits: core_u64::mul(*width, *bits, rhs.low_u64()) }
            }
            Repr::Mid { width, bits } => {
                Repr::Mid { width: *width, bits: core_u128::mul(*width, *bits, rhs.low_u128()) }
            }
            Repr::Big { width, limbs } => rhs.with_limbs(|bl| Repr::Big {
                width: *width,
                limbs: core_big::mul_mod(*width, limbs, bl),
            }),
        };
        BitVec { repr }
    }

    /// Full-precision unsigned product: the result has width
    /// `self.width() + rhs.width()` and equals the exact product of the two
    /// operands read as unsigned integers. The result tier is chosen by the
    /// *sum* width, so two `Small` operands may produce a `Mid` result.
    ///
    /// ```
    /// use dp_bitvec::{BitVec, Tier};
    /// let a = BitVec::from_u64(4, 15);
    /// assert_eq!(a.widening_mul_unsigned(&a).to_u64(), Some(225));
    /// let b = BitVec::ones(64);
    /// assert_eq!(b.widening_mul_unsigned(&b).tier(), Tier::Mid);
    /// ```
    pub fn widening_mul_unsigned(&self, rhs: &BitVec) -> Self {
        Self::checked_width(self.width() + rhs.width());
        BitVec::from_repr(core_mixed::widening_mul_unsigned(self, rhs))
    }

    /// Full-precision signed product: the result has width
    /// `self.width() + rhs.width()` and equals the exact product of the two
    /// operands read as two's-complement integers.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// let a = BitVec::from_i64(4, -8);
    /// assert_eq!(a.widening_mul_signed(&a).to_i64(), Some(64));
    /// ```
    pub fn widening_mul_signed(&self, rhs: &BitVec) -> Self {
        Self::checked_width(self.width() + rhs.width());
        BitVec::from_repr(core_mixed::widening_mul_signed(self, rhs))
    }

    // ------------------------------------------------------------------
    // Bitwise operations and shifts
    // ------------------------------------------------------------------

    /// Bitwise NOT.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::from_u64(4, 0b1010).not().to_u64(), Some(0b0101));
    /// ```
    pub fn not(&self) -> Self {
        let repr = match &self.repr {
            Repr::Small { width, bits } => {
                Repr::Small { width: *width, bits: core_u64::not(*width, *bits) }
            }
            Repr::Mid { width, bits } => {
                Repr::Mid { width: *width, bits: core_u128::not(*width, *bits) }
            }
            Repr::Big { width, limbs } => {
                Repr::Big { width: *width, limbs: core_big::not(*width, limbs) }
            }
        };
        BitVec { repr }
    }

    /// Bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// let a = BitVec::from_u64(4, 0b1100);
    /// let b = BitVec::from_u64(4, 0b1010);
    /// assert_eq!(a.and(&b).to_u64(), Some(0b1000));
    /// ```
    pub fn and(&self, rhs: &BitVec) -> Self {
        self.check_same_width(rhs, "and");
        self.bitop(rhs, |a, b| a & b)
    }

    /// Bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// let a = BitVec::from_u64(4, 0b1100);
    /// let b = BitVec::from_u64(4, 0b1010);
    /// assert_eq!(a.or(&b).to_u64(), Some(0b1110));
    /// ```
    pub fn or(&self, rhs: &BitVec) -> Self {
        self.check_same_width(rhs, "or");
        self.bitop(rhs, |a, b| a | b)
    }

    /// Bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// let a = BitVec::from_u64(4, 0b1100);
    /// let b = BitVec::from_u64(4, 0b1010);
    /// assert_eq!(a.xor(&b).to_u64(), Some(0b0110));
    /// ```
    pub fn xor(&self, rhs: &BitVec) -> Self {
        self.check_same_width(rhs, "xor");
        self.bitop(rhs, |a, b| a ^ b)
    }

    /// Limb-wise bitwise operation at equal widths. The closure is applied
    /// per limb word; bitwise ops never set bits above the width, so the
    /// canonical form is preserved without re-masking.
    fn bitop(&self, rhs: &BitVec, f: impl Fn(u64, u64) -> u64) -> Self {
        let repr = match &self.repr {
            Repr::Small { width, bits } => {
                Repr::Small { width: *width, bits: f(*bits, rhs.low_u64()) }
            }
            Repr::Mid { width, bits } => {
                let r = rhs.low_u128();
                let lo = f(*bits as u64, r as u64) as u128;
                let hi = f((*bits >> 64) as u64, (r >> 64) as u64) as u128;
                Repr::Mid { width: *width, bits: lo | (hi << 64) }
            }
            Repr::Big { width, limbs } => rhs.with_limbs(|bl| Repr::Big {
                width: *width,
                limbs: limbs
                    .iter()
                    .enumerate()
                    .map(|(k, &l)| f(l, core_big::limb(bl, k)))
                    .collect(),
            }),
        };
        BitVec { repr }
    }

    /// Logical left shift within the width (top bits fall off, zeros enter).
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::from_u64(4, 0b0110).shl(2).to_u64(), Some(0b1000));
    /// // Shifting by the width or more clears the value.
    /// assert_eq!(BitVec::ones(4).shl(4).to_u64(), Some(0));
    /// ```
    pub fn shl(&self, amount: usize) -> Self {
        let repr = match &self.repr {
            Repr::Small { width, bits } => {
                Repr::Small { width: *width, bits: core_u64::shl(*width, *bits, amount) }
            }
            Repr::Mid { width, bits } => {
                Repr::Mid { width: *width, bits: core_u128::shl(*width, *bits, amount) }
            }
            Repr::Big { width, limbs } => {
                Repr::Big { width: *width, limbs: core_big::shl(*width, limbs, amount) }
            }
        };
        BitVec { repr }
    }

    /// Logical right shift (zeros enter at the top).
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::from_u64(8, 0b0001_0110).lshr(2).to_u64(), Some(0b0000_0101));
    /// ```
    pub fn lshr(&self, amount: usize) -> Self {
        let repr = match &self.repr {
            Repr::Small { width, bits } => {
                Repr::Small { width: *width, bits: core_u64::lshr(*width, *bits, amount) }
            }
            Repr::Mid { width, bits } => {
                Repr::Mid { width: *width, bits: core_u128::lshr(*width, *bits, amount) }
            }
            Repr::Big { width, limbs } => {
                Repr::Big { width: *width, limbs: core_big::lshr(*width, limbs, amount) }
            }
        };
        BitVec { repr }
    }

    /// Arithmetic right shift (copies of the sign bit enter at the top).
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::from_i64(6, -12).ashr(2).to_i64(), Some(-3));
    /// // Shifting by the width or more saturates to the sign fill.
    /// assert_eq!(BitVec::from_i64(6, -12).ashr(100).to_i64(), Some(-1));
    /// ```
    pub fn ashr(&self, amount: usize) -> Self {
        let repr = match &self.repr {
            Repr::Small { width, bits } => {
                Repr::Small { width: *width, bits: core_u64::ashr(*width, *bits, amount) }
            }
            Repr::Mid { width, bits } => {
                Repr::Mid { width: *width, bits: core_u128::ashr(*width, *bits, amount) }
            }
            Repr::Big { width, limbs } => {
                Repr::Big { width: *width, limbs: core_big::ashr(*width, limbs, amount) }
            }
        };
        BitVec { repr }
    }

    // ------------------------------------------------------------------
    // In-place shift/mask kernels (allocation-free on every tier)
    // ------------------------------------------------------------------

    /// Logical left shift in place — [`BitVec::shl`] without the fresh
    /// result. On the `Big` tier the limbs shift over themselves, so wide
    /// fold loops allocate nothing per shift.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// let mut v = BitVec::from_u64(4, 0b0110);
    /// v.shl_assign(2);
    /// assert_eq!(v.to_u64(), Some(0b1000));
    /// ```
    pub fn shl_assign(&mut self, amount: usize) {
        match &mut self.repr {
            Repr::Small { width, bits } => *bits = core_u64::shl(*width, *bits, amount),
            Repr::Mid { width, bits } => *bits = core_u128::shl(*width, *bits, amount),
            Repr::Big { width, limbs } => core_big::shl_assign(*width, limbs, amount),
        }
    }

    /// Logical right shift in place — [`BitVec::lshr`] without the fresh
    /// result.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// let mut v = BitVec::from_u64(8, 0b0001_0110);
    /// v.lshr_assign(2);
    /// assert_eq!(v.to_u64(), Some(0b0000_0101));
    /// ```
    pub fn lshr_assign(&mut self, amount: usize) {
        match &mut self.repr {
            Repr::Small { width, bits } => *bits = core_u64::lshr(*width, *bits, amount),
            Repr::Mid { width, bits } => *bits = core_u128::lshr(*width, *bits, amount),
            Repr::Big { width, limbs } => core_big::lshr_assign(*width, limbs, amount),
        }
    }

    /// Arithmetic right shift in place — [`BitVec::ashr`] without the
    /// fresh result.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// let mut v = BitVec::from_i64(6, -12);
    /// v.ashr_assign(2);
    /// assert_eq!(v.to_i64(), Some(-3));
    /// ```
    pub fn ashr_assign(&mut self, amount: usize) {
        match &mut self.repr {
            Repr::Small { width, bits } => *bits = core_u64::ashr(*width, *bits, amount),
            Repr::Mid { width, bits } => *bits = core_u128::ashr(*width, *bits, amount),
            Repr::Big { width, limbs } => core_big::ashr_assign(*width, limbs, amount),
        }
    }

    /// Clears every bit at position `keep` or above, in place, leaving the
    /// width unchanged — the allocation-free counterpart of truncating and
    /// zero-extending back.
    ///
    /// # Panics
    ///
    /// Panics if `keep > self.width()`.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// let mut v = BitVec::from_u64(8, 0b1011_0110);
    /// v.mask_assign(4);
    /// assert_eq!(v.to_u64(), Some(0b0110));
    /// assert_eq!(v.width(), 8);
    /// ```
    pub fn mask_assign(&mut self, keep: usize) {
        assert!(keep <= self.width(), "mask to {keep} exceeds width {}", self.width());
        let keep = keep as u32;
        match &mut self.repr {
            Repr::Small { bits, .. } => *bits &= core_u64::mask(keep),
            Repr::Mid { bits, .. } => *bits &= core_u128::mask(keep),
            Repr::Big { limbs, .. } => core_big::mask_assign(keep, limbs),
        }
    }

    // ------------------------------------------------------------------
    // Comparisons (width-agnostic, by value)
    // ------------------------------------------------------------------

    /// Compares the unsigned values; widths may differ.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// use std::cmp::Ordering;
    /// let a = BitVec::from_u64(4, 9);
    /// let b = BitVec::from_u64(12, 9);
    /// assert_eq!(a.cmp_unsigned(&b), Ordering::Equal);
    /// ```
    pub fn cmp_unsigned(&self, rhs: &BitVec) -> Ordering {
        core_mixed::cmp_unsigned(self, rhs)
    }

    /// Compares the signed (two's-complement) values; widths may differ.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// use std::cmp::Ordering;
    /// let a = BitVec::from_i64(4, -3);
    /// let b = BitVec::from_i64(16, 2);
    /// assert_eq!(a.cmp_signed(&b), Ordering::Less);
    /// ```
    pub fn cmp_signed(&self, rhs: &BitVec) -> Ordering {
        core_mixed::cmp_signed(self, rhs)
    }

    // ------------------------------------------------------------------
    // Information-content helpers (paper Definition 5.1 on concrete values)
    // ------------------------------------------------------------------

    /// Returns `true` if this vector equals the `signedness`-extension of its
    /// `i` least significant bits — the membership test behind the paper's
    /// Definition 5.1 applied to one concrete value.
    ///
    /// With `i == 0`, only the all-zero vector is an unsigned extension and
    /// no vector is a signed extension (there is no sign bit to copy).
    ///
    /// ```
    /// use dp_bitvec::{BitVec, Signedness};
    /// let v = BitVec::from_i64(8, -3); // 8'b1111_1101
    /// assert!(v.is_extension_of(3, Signedness::Signed));
    /// assert!(!v.is_extension_of(2, Signedness::Signed));
    /// assert!(!v.is_extension_of(3, Signedness::Unsigned));
    /// ```
    pub fn is_extension_of(&self, i: usize, signedness: Signedness) -> bool {
        if i >= self.width() {
            return true;
        }
        if i == 0 {
            return signedness == Signedness::Unsigned && self.is_zero();
        }
        match signedness {
            Signedness::Unsigned => self.min_unsigned_width() <= i,
            Signedness::Signed => self.min_signed_width() <= i,
        }
    }

    /// The smallest `i` such that this vector is the unsigned extension of
    /// its `i` least significant bits: the position of the highest set bit
    /// plus one, or `0` for the all-zero vector.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::from_u64(8, 0b0001_0110).min_unsigned_width(), 5);
    /// assert_eq!(BitVec::zero(8).min_unsigned_width(), 0);
    /// ```
    pub fn min_unsigned_width(&self) -> usize {
        match &self.repr {
            Repr::Small { bits, .. } => core_u64::min_unsigned_width(*bits),
            Repr::Mid { bits, .. } => core_u128::min_unsigned_width(*bits),
            Repr::Big { limbs, .. } => core_big::min_unsigned_width(limbs),
        }
    }

    /// The smallest `i >= 1` such that this vector is the signed extension of
    /// its `i` least significant bits.
    ///
    /// ```
    /// use dp_bitvec::BitVec;
    /// assert_eq!(BitVec::from_i64(8, -3).min_signed_width(), 3);
    /// assert_eq!(BitVec::from_i64(8, 0).min_signed_width(), 1);
    /// assert_eq!(BitVec::from_i64(8, 127).min_signed_width(), 8);
    /// ```
    pub fn min_signed_width(&self) -> usize {
        match &self.repr {
            Repr::Small { width, bits } => core_u64::min_signed_width(*width, *bits),
            Repr::Mid { width, bits } => core_u128::min_signed_width(*width, *bits),
            Repr::Big { width, limbs } => core_big::min_signed_width(*width, limbs),
        }
    }

    // ------------------------------------------------------------------
    // Internal helpers
    // ------------------------------------------------------------------

    fn check_same_width(&self, rhs: &BitVec, op: &str) {
        assert_eq!(
            self.width(),
            rhs.width(),
            "{op} requires equal widths (got {} and {})",
            self.width(),
            rhs.width()
        );
    }
}

// ----------------------------------------------------------------------
// Formatting
// ----------------------------------------------------------------------

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec({self})")
    }
}

impl fmt::Display for BitVec {
    /// Verilog-style sized binary literal, e.g. `4'b1010`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b", self.width())?;
        for i in (0..self.width()).rev() {
            f.write_str(if self.bit(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl fmt::Binary for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.width()).rev() {
            f.write_str(if self.bit(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl fmt::LowerHex for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = self.width().div_ceil(4);
        for d in (0..digits).rev() {
            let mut nibble = 0u8;
            for b in 0..4 {
                let idx = d * 4 + b;
                if idx < self.width() && self.bit(idx) {
                    nibble |= 1 << b;
                }
            }
            write!(f, "{nibble:x}")?;
        }
        Ok(())
    }
}

impl fmt::UpperHex for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = format!("{self:x}");
        f.write_str(&s.to_uppercase())
    }
}

// ----------------------------------------------------------------------
// Parsing
// ----------------------------------------------------------------------

/// Error returned when parsing a [`BitVec`] from a string fails.
///
/// ```
/// use dp_bitvec::BitVec;
/// assert!("4'b10x1".parse::<BitVec>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitVecError {
    message: String,
}

impl fmt::Display for ParseBitVecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid bit vector literal: {}", self.message)
    }
}

impl Error for ParseBitVecError {}

impl FromStr for BitVec {
    type Err = ParseBitVecError;

    /// Parses a Verilog-style sized binary literal such as `6'b101001`.
    /// Underscores in the digit string are ignored.
    ///
    /// # Errors
    ///
    /// Returns an error if the literal is malformed, the width is zero, or
    /// the digit count does not match the declared width.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |m: &str| ParseBitVecError { message: m.to_string() };
        let (w, rest) = s.split_once("'b").ok_or_else(|| err("expected <width>'b<bits>"))?;
        let width: usize = w.trim().parse().map_err(|_| err("bad width"))?;
        if width == 0 {
            return Err(err("width must be at least 1"));
        }
        let digits: Vec<char> = rest.chars().filter(|&c| c != '_').collect();
        if digits.len() != width {
            return Err(err("digit count does not match declared width"));
        }
        let mut v = BitVec::zero(width);
        for (pos, c) in digits.iter().enumerate() {
            let bit_index = width - 1 - pos;
            match c {
                '0' => {}
                '1' => v.set_bit(bit_index, true),
                _ => return Err(err("digits must be 0 or 1")),
            }
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_ones() {
        let z = BitVec::zero(70);
        assert!(z.is_zero());
        assert_eq!(z.width(), 70);
        let o = BitVec::ones(70);
        assert!(o.is_all_ones());
        assert_eq!(o.to_i64(), Some(-1));
    }

    #[test]
    fn tiers_follow_width() {
        assert_eq!(BitVec::zero(1).tier(), Tier::Small);
        assert_eq!(BitVec::zero(64).tier(), Tier::Small);
        assert_eq!(BitVec::zero(65).tier(), Tier::Mid);
        assert_eq!(BitVec::zero(128).tier(), Tier::Mid);
        assert_eq!(BitVec::zero(129).tier(), Tier::Big);
        // The tier is width-determined even for operation results.
        let p = BitVec::ones(64).widening_mul_unsigned(&BitVec::ones(64));
        assert_eq!(p.tier(), Tier::Mid);
        let q = BitVec::ones(65).widening_mul_unsigned(&BitVec::ones(64));
        assert_eq!(q.tier(), Tier::Big);
    }

    #[test]
    #[should_panic(expected = "width must be at least 1")]
    fn zero_width_panics() {
        let _ = BitVec::zero(0);
    }

    #[test]
    fn from_u64_rejects_overflow() {
        assert!(std::panic::catch_unwind(|| BitVec::from_u64(3, 8)).is_err());
        assert_eq!(BitVec::from_u64(3, 7).to_u64(), Some(7));
    }

    #[test]
    fn from_i64_rejects_overflow() {
        assert!(std::panic::catch_unwind(|| BitVec::from_i64(3, 4)).is_err());
        assert!(std::panic::catch_unwind(|| BitVec::from_i64(3, -5)).is_err());
        assert_eq!(BitVec::from_i64(3, -4).to_i64(), Some(-4));
        assert_eq!(BitVec::from_i64(3, 3).to_i64(), Some(3));
    }

    #[test]
    fn wrapping_constructors_mask() {
        assert_eq!(BitVec::from_u64_wrapping(4, 0x1F).to_u64(), Some(0xF));
        assert_eq!(BitVec::from_i64_wrapping(4, -1).to_u64(), Some(0xF));
        assert_eq!(BitVec::from_i64_wrapping(100, -1), BitVec::ones(100));
        assert_eq!(BitVec::from_i64_wrapping(200, -1), BitVec::ones(200));
    }

    #[test]
    fn bit_get_set_roundtrip() {
        let mut v = BitVec::zero(130);
        v.set_bit(0, true);
        v.set_bit(64, true);
        v.set_bit(129, true);
        assert!(v.bit(0) && v.bit(64) && v.bit(129));
        v.set_bit(64, false);
        assert!(!v.bit(64));
        assert_eq!(v.min_unsigned_width(), 130);
    }

    #[test]
    fn trunc_extend_roundtrip() {
        let v = BitVec::from_u64(8, 0b1011_0101);
        assert_eq!(v.trunc(4).to_u64(), Some(0b0101));
        assert_eq!(v.zext(16).to_u64(), Some(0b1011_0101));
        assert_eq!(v.sext(16).to_i64(), v.to_i64());
        // Resizing across a limb boundary.
        let w = BitVec::from_i64(60, -17);
        assert_eq!(w.sext(80).to_i64(), Some(-17));
        assert_eq!(w.sext(80).trunc(60), w);
    }

    #[test]
    fn resize_across_every_tier_boundary() {
        for &(from, to) in
            &[(60usize, 70usize), (70, 60), (60, 140), (140, 60), (120, 140), (140, 120)]
        {
            let v = BitVec::from_i64_wrapping(from, -23);
            let r = v.resize(Signedness::Signed, to);
            assert_eq!(r.width(), to);
            assert_eq!(r.to_i64(), Some(-23), "{from} -> {to}");
            let u = BitVec::from_u64_wrapping(from, 23);
            assert_eq!(u.resize(Signedness::Unsigned, to).to_u64(), Some(23), "{from} -> {to}");
        }
    }

    #[test]
    fn resize_matches_paper_section_2_2() {
        let v = BitVec::from_u64(6, 0b10_0001);
        assert_eq!(v.resize(Signedness::Signed, 9).to_u64(), Some(0b1_1110_0001));
        assert_eq!(v.resize(Signedness::Unsigned, 9).to_u64(), Some(0b0_0010_0001));
        assert_eq!(v.resize(Signedness::Signed, 3).to_u64(), Some(0b001));
        assert_eq!(v.resize(Signedness::Signed, 6), v);
    }

    #[test]
    fn add_sub_neg_small() {
        let a = BitVec::from_u64(4, 11);
        let b = BitVec::from_u64(4, 8);
        assert_eq!(a.wrapping_add(&b).to_u64(), Some(3));
        assert_eq!(a.wrapping_sub(&b).to_u64(), Some(3));
        assert_eq!(b.wrapping_sub(&a).to_i64(), Some(-3));
        assert_eq!(a.wrapping_neg().to_u64(), Some(5));
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = BitVec::ones(128);
        let b = BitVec::from_u64(128, 1);
        assert!(a.wrapping_add(&b).is_zero());
        let c = BitVec::ones(65);
        let d = BitVec::from_u64(65, 1);
        assert!(c.wrapping_add(&d).is_zero());
        let e = BitVec::ones(192);
        let f = BitVec::from_u64(192, 1);
        assert!(e.wrapping_add(&f).is_zero());
    }

    #[test]
    fn widening_mul_unsigned_exact() {
        let a = BitVec::from_u64(7, 100);
        let b = BitVec::from_u64(9, 300);
        let p = a.widening_mul_unsigned(&b);
        assert_eq!(p.width(), 16);
        assert_eq!(p.to_u64(), Some(30_000));
    }

    #[test]
    fn widening_mul_signed_exact() {
        for x in -8i64..8 {
            for y in -8i64..8 {
                let a = BitVec::from_i64(4, x);
                let b = BitVec::from_i64(4, y);
                assert_eq!(a.widening_mul_signed(&b).to_i64(), Some(x * y), "{x}*{y}");
            }
        }
    }

    #[test]
    fn widening_mul_large_widths() {
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        let a = BitVec::ones(64);
        let p = a.widening_mul_unsigned(&a);
        assert_eq!(p.width(), 128);
        assert_eq!(p.to_u128(), Some(u64::MAX as u128 * u64::MAX as u128));
        // Above 128 bits the boxed kernel takes over: (2^128 - 1)^2.
        let b = BitVec::ones(128);
        let q = b.widening_mul_unsigned(&b);
        assert_eq!(q.width(), 256);
        // 2^256 - 2^129 + 1: bit 0 set, bits 129..=255 set, bit 128 clear.
        assert_eq!(q.trunc(128).to_u128(), Some(1));
        assert!(q.bit(255) && q.bit(129) && !q.bit(128));
        // Signed: (-2^127)^2 = 2^254.
        let m = BitVec::from_fn(128, |i| i == 127);
        let s = m.widening_mul_signed(&m);
        assert_eq!(s.min_unsigned_width(), 255);
    }

    #[test]
    fn wrapping_mul_truncates() {
        let a = BitVec::from_u64(4, 13);
        let b = BitVec::from_u64(4, 11);
        assert_eq!(a.wrapping_mul(&b).to_u64(), Some((13 * 11) % 16));
    }

    #[test]
    fn bitwise_ops() {
        let a = BitVec::from_u64(8, 0b1100_1010);
        let b = BitVec::from_u64(8, 0b1010_0110);
        assert_eq!(a.and(&b).to_u64(), Some(0b1000_0010));
        assert_eq!(a.or(&b).to_u64(), Some(0b1110_1110));
        assert_eq!(a.xor(&b).to_u64(), Some(0b0110_1100));
        assert_eq!(a.not().to_u64(), Some(0b0011_0101));
    }

    #[test]
    fn shifts() {
        let v = BitVec::from_u64(8, 0b0001_0110);
        assert_eq!(v.shl(3).to_u64(), Some(0b1011_0000));
        assert_eq!(v.lshr(2).to_u64(), Some(0b0000_0101));
        let n = BitVec::from_i64(8, -12);
        assert_eq!(n.ashr(2).to_i64(), Some(-3));
        assert_eq!(n.ashr(100).to_i64(), Some(-1));
        assert_eq!(v.shl(100).to_u64(), Some(0));
    }

    #[test]
    fn comparisons_across_widths() {
        use std::cmp::Ordering::*;
        let a = BitVec::from_i64(4, -3);
        let b = BitVec::from_i64(70, -3);
        assert_eq!(a.cmp_signed(&b), Equal);
        assert_eq!(a.cmp_unsigned(&b), Less); // 13 < huge pattern
        assert_eq!(BitVec::from_u64(9, 256).cmp_unsigned(&BitVec::from_u64(4, 15)), Greater);
        // Crossing into the boxed tier.
        let c = BitVec::from_i64(200, -3);
        assert_eq!(a.cmp_signed(&c), Equal);
        assert_eq!(c.cmp_signed(&BitVec::from_i64(70, 2)), Less);
        assert_eq!(c.cmp_unsigned(&b), Greater);
    }

    #[test]
    fn extension_membership() {
        let v = BitVec::from_u64(8, 0b0000_0110);
        assert!(v.is_extension_of(3, Signedness::Unsigned));
        assert!(!v.is_extension_of(2, Signedness::Unsigned));
        assert!(!v.is_extension_of(3, Signedness::Signed)); // 3'b110 sign-extends to ones
        assert!(v.is_extension_of(4, Signedness::Signed));
        assert!(v.is_extension_of(200, Signedness::Signed)); // i >= width is trivially true
        assert!(BitVec::zero(8).is_extension_of(0, Signedness::Unsigned));
        assert!(!BitVec::zero(8).is_extension_of(0, Signedness::Signed));
    }

    #[test]
    fn min_widths() {
        assert_eq!(BitVec::from_u64(16, 300).min_unsigned_width(), 9);
        assert_eq!(BitVec::from_i64(16, 300).min_signed_width(), 10);
        assert_eq!(BitVec::from_i64(16, -300).min_signed_width(), 10);
        assert_eq!(BitVec::from_i64(16, -256).min_signed_width(), 9);
        assert_eq!(BitVec::ones(16).min_signed_width(), 1);
        assert_eq!(BitVec::zero(16).min_signed_width(), 1);
    }

    #[test]
    fn min_width_consistency_with_membership() {
        for raw in 0u64..256 {
            let v = BitVec::from_u64(8, raw);
            let mu = v.min_unsigned_width();
            assert!(v.is_extension_of(mu, Signedness::Unsigned));
            if mu > 0 {
                assert!(!v.is_extension_of(mu - 1, Signedness::Unsigned));
            }
            let ms = v.min_signed_width();
            assert!(v.is_extension_of(ms, Signedness::Signed));
            if ms > 1 {
                assert!(!v.is_extension_of(ms - 1, Signedness::Signed));
            }
        }
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let v = BitVec::from_u64(6, 0b10_1101);
        assert_eq!(v.to_string(), "6'b101101");
        assert_eq!("6'b101101".parse::<BitVec>().unwrap(), v);
        assert_eq!("6'b10_1101".parse::<BitVec>().unwrap(), v);
        assert_eq!(format!("{v:b}"), "101101");
        assert_eq!(format!("{v:x}"), "2d");
        assert_eq!(format!("{v:X}"), "2D");
        assert_eq!(format!("{v:?}"), "BitVec(6'b101101)");
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<BitVec>().is_err());
        assert!("0'b".parse::<BitVec>().is_err());
        assert!("4'b101".parse::<BitVec>().is_err());
        assert!("4'b1012".parse::<BitVec>().is_err());
        assert!("x'b1010".parse::<BitVec>().is_err());
    }

    #[test]
    fn i128_conversions() {
        assert_eq!(BitVec::from_i64(128, -5).to_i128(), Some(-5));
        assert_eq!(BitVec::ones(200).to_i128(), Some(-1));
        let mut big = BitVec::zero(200);
        big.set_bit(150, true);
        assert_eq!(big.to_i128(), None);
        assert_eq!(big.to_u128(), None);
        assert_eq!(big.to_u64(), None);
    }
}
