//! Bench regression gating: diff a fresh `dpmc bench` run against a
//! committed baseline (`dpmc bench --compare BENCH.json`).
//!
//! The bench report splits cleanly into two kinds of fields:
//!
//! * **QoR and provenance counters** (`metrics`, `trace_events`) are pure
//!   functions of design and config — any difference from the baseline is
//!   a behavior change and fails the gate exactly;
//! * **wall times** (`spans`) are noisy — only the per-flow total is
//!   checked, against a relative threshold (`--max-regress-pct`) plus a
//!   small absolute slack floor so microsecond jitter on tiny designs
//!   cannot fail CI.

use dp_metrics::Json;

/// Thresholds for the timing half of the comparison.
#[derive(Debug, Clone, Copy)]
pub struct CompareConfig {
    /// Maximum allowed relative slowdown of a flow's total wall time, in
    /// percent (`50.0` = fresh may take up to 1.5x the baseline).
    pub max_regress_pct: f64,
    /// Absolute slack added on top of the relative threshold, in
    /// microseconds. Keeps sub-millisecond flows from tripping the gate
    /// on scheduler noise.
    pub slack_us: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig { max_regress_pct: 50.0, slack_us: 2000.0 }
    }
}

/// Outcome of one baseline comparison.
#[derive(Debug, Default)]
pub struct CompareReport {
    /// Exact-match failures: QoR counters or trace event counts that
    /// drifted from the baseline, and structural problems (missing
    /// designs/flows, schema mismatch).
    pub mismatches: Vec<String>,
    /// Wall-time regressions beyond the configured threshold.
    pub regressions: Vec<String>,
    /// Informational notes (e.g. designs present only in the fresh run).
    pub notes: Vec<String>,
    /// Design/flow pairs whose counters matched the baseline exactly.
    pub flows_checked: usize,
}

impl CompareReport {
    /// Whether the gate passes (no mismatches, no timing regressions).
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty() && self.regressions.is_empty()
    }

    /// Renders the report as the `dpmc bench --compare` console output.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for m in &self.mismatches {
            s.push_str(&format!("MISMATCH  {m}\n"));
        }
        for r in &self.regressions {
            s.push_str(&format!("REGRESSED {r}\n"));
        }
        for n in &self.notes {
            s.push_str(&format!("note      {n}\n"));
        }
        s.push_str(&format!(
            "compared {} flow(s): {}\n",
            self.flows_checked,
            if self.passed() { "OK" } else { "FAIL" }
        ));
        s
    }
}

/// Sum of the depth-0 span wall times, in microseconds: the flow's total
/// (the flow root plus the post-flow fold/STA/verify stages that `dpmc
/// bench` records at top level).
fn total_us(spans: &Json) -> f64 {
    spans
        .as_array()
        .unwrap_or(&[])
        .iter()
        .filter(|r| r.get("depth").and_then(Json::as_i64) == Some(0))
        .filter_map(|r| r.get("us").and_then(Json::as_f64))
        .sum()
}

fn flow_name(design: &Json, flow: &Json) -> String {
    format!(
        "{} [{}]",
        design.get("design").and_then(Json::as_str).unwrap_or("?"),
        flow.get("strategy").and_then(Json::as_str).unwrap_or("?")
    )
}

/// Field-by-field exact comparison of two flat JSON objects (the
/// `metrics` blocks). Values compare canonically: both sides are
/// re-rendered, so an `Int`-vs-`Float` encoding of the same number still
/// differs — exactly the discipline the deterministic serializer promises.
fn diff_object(name: &str, what: &str, base: &Json, fresh: &Json, out: &mut Vec<String>) {
    let (Json::Object(bf), Json::Object(ff)) = (base, fresh) else {
        if base != fresh {
            out.push(format!("{name}: {what} is not an object in one report"));
        }
        return;
    };
    for (key, bv) in bf {
        match ff.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
            None => out.push(format!("{name}: {what}.{key} missing from fresh run")),
            Some(fv) if fv.render() != bv.render() => {
                out.push(format!("{name}: {what}.{key} {} -> {}", bv.render(), fv.render()))
            }
            Some(_) => {}
        }
    }
    for (key, _) in ff {
        if !bf.iter().any(|(k, _)| k == key) {
            out.push(format!("{name}: {what}.{key} not in baseline"));
        }
    }
}

fn compare_flow(
    name: &str,
    base: &Json,
    fresh: &Json,
    cfg: &CompareConfig,
    rep: &mut CompareReport,
) {
    diff_object(
        name,
        "metrics",
        base.get("metrics").unwrap_or(&Json::Null),
        fresh.get("metrics").unwrap_or(&Json::Null),
        &mut rep.mismatches,
    );
    let base_ev = base.get("trace_events").and_then(Json::as_i64);
    let fresh_ev = fresh.get("trace_events").and_then(Json::as_i64);
    if base_ev != fresh_ev {
        rep.mismatches.push(format!(
            "{name}: trace_events {} -> {}",
            base_ev.map_or("absent".to_string(), |v| v.to_string()),
            fresh_ev.map_or("absent".to_string(), |v| v.to_string()),
        ));
    }
    let base_us = total_us(base.get("spans").unwrap_or(&Json::Null));
    let fresh_us = total_us(fresh.get("spans").unwrap_or(&Json::Null));
    let limit = base_us * (1.0 + cfg.max_regress_pct / 100.0) + cfg.slack_us;
    if fresh_us > limit {
        rep.regressions.push(format!(
            "{name}: total {fresh_us:.0} us > limit {limit:.0} us \
             (baseline {base_us:.0} us + {}% + {:.0} us slack)",
            cfg.max_regress_pct, cfg.slack_us
        ));
    }
    rep.flows_checked += 1;
}

/// Compares a fresh bench document against a baseline.
///
/// Every design/flow in the *baseline* must appear in the fresh run with
/// exactly matching counters; fresh-only designs are reported as notes so
/// adding a design does not invalidate an old baseline.
pub fn compare_reports(baseline: &Json, fresh: &Json, cfg: &CompareConfig) -> CompareReport {
    let mut rep = CompareReport::default();
    let (bs, fs) = (baseline.get("schema"), fresh.get("schema"));
    if let (Some(b), Some(f)) = (bs, fs) {
        if b != f {
            rep.notes.push(format!(
                "schema {} vs {} (counters compared by key)",
                b.render(),
                f.render()
            ));
        }
    }
    let empty = Vec::new();
    let base_designs = baseline.get("designs").and_then(Json::as_array).unwrap_or(&empty);
    let fresh_designs = fresh.get("designs").and_then(Json::as_array).unwrap_or(&empty);
    let find = |set: &'_ [Json], name: Option<&str>| -> Option<usize> {
        set.iter().position(|d| d.get("design").and_then(Json::as_str) == name)
    };
    for bd in base_designs {
        let dname = bd.get("design").and_then(Json::as_str);
        let Some(fi) = find(fresh_designs, dname) else {
            rep.mismatches.push(format!("design {} missing from fresh run", dname.unwrap_or("?")));
            continue;
        };
        let fd = &fresh_designs[fi];
        let bflows = bd.get("flows").and_then(Json::as_array).unwrap_or(&empty);
        let fflows = fd.get("flows").and_then(Json::as_array).unwrap_or(&empty);
        for bf in bflows {
            let strat = bf.get("strategy").and_then(Json::as_str);
            match fflows.iter().find(|f| f.get("strategy").and_then(Json::as_str) == strat) {
                Some(ff) => compare_flow(&flow_name(bd, bf), bf, ff, cfg, &mut rep),
                None => rep
                    .mismatches
                    .push(format!("flow {} missing from fresh run", flow_name(bd, bf))),
            }
        }
    }
    for fd in fresh_designs {
        let dname = fd.get("design").and_then(Json::as_str);
        if find(base_designs, dname).is_none() {
            rep.notes.push(format!("design {} not in baseline (skipped)", dname.unwrap_or("?")));
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(strategy: &str, gates: i64, events: i64, us: i64) -> Json {
        Json::obj()
            .field("strategy", strategy)
            .field("metrics", Json::obj().field("gates", gates).field("delay_ns", 1.5))
            .field("trace_events", events)
            .field(
                "spans",
                Json::Array(vec![Json::obj()
                    .field("name", "flow")
                    .field("depth", 0i64)
                    .field("us", us)]),
            )
    }

    fn doc(gates: i64, events: i64, us: i64) -> Json {
        Json::obj().field("schema", "dpmc-bench/2").field(
            "designs",
            Json::Array(vec![Json::obj()
                .field("design", "fig3")
                .field("flows", Json::Array(vec![flow("new-merge", gates, events, us)]))]),
        )
    }

    #[test]
    fn identical_reports_pass() {
        let rep = compare_reports(&doc(100, 9, 500), &doc(100, 9, 500), &CompareConfig::default());
        assert!(rep.passed(), "{}", rep.render());
        assert_eq!(rep.flows_checked, 1);
    }

    #[test]
    fn qor_drift_fails_exactly() {
        let rep = compare_reports(&doc(100, 9, 500), &doc(101, 9, 500), &CompareConfig::default());
        assert!(!rep.passed());
        assert!(rep.mismatches[0].contains("metrics.gates 100 -> 101"), "{:?}", rep.mismatches);
    }

    #[test]
    fn trace_event_drift_fails() {
        let rep = compare_reports(&doc(100, 9, 500), &doc(100, 12, 500), &CompareConfig::default());
        assert!(!rep.passed());
        assert!(rep.mismatches[0].contains("trace_events 9 -> 12"), "{:?}", rep.mismatches);
    }

    #[test]
    fn timing_noise_within_slack_passes_but_blowup_fails() {
        let cfg = CompareConfig { max_regress_pct: 50.0, slack_us: 2000.0 };
        // 500 us -> 2600 us is inside 500*1.5 + 2000.
        assert!(compare_reports(&doc(1, 1, 500), &doc(1, 1, 2600), &cfg).passed());
        let rep = compare_reports(&doc(1, 1, 500), &doc(1, 1, 5000), &cfg);
        assert!(!rep.passed());
        assert!(rep.regressions[0].contains("5000 us"), "{:?}", rep.regressions);
    }

    #[test]
    fn missing_design_fails_and_extra_design_notes() {
        let base = doc(100, 9, 500);
        let fresh = Json::obj().field("schema", "dpmc-bench/2").field(
            "designs",
            Json::Array(vec![Json::obj()
                .field("design", "other")
                .field("flows", Json::Array(vec![flow("new-merge", 1, 1, 1)]))]),
        );
        let rep = compare_reports(&base, &fresh, &CompareConfig::default());
        assert!(!rep.passed());
        assert!(rep.mismatches.iter().any(|m| m.contains("fig3 missing")), "{:?}", rep.mismatches);
        assert!(rep.notes.iter().any(|n| n.contains("other")), "{:?}", rep.notes);
    }
}
