//! Soundness properties of the information-content analysis — the
//! foundations the clustering and synthesis correctness proofs rest on.

use dp_analysis::{info_content, optimize_widths, required_precision};
use dp_dfg::gen::{random_dfg, random_inputs, GenConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every node-output bound holds on every evaluated signal.
    #[test]
    fn output_claims_hold(seed in any::<u64>(), ops in 3usize..20) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_dfg(&mut rng, &GenConfig { num_ops: ops, ..GenConfig::default() });
        let ic = info_content(&g);
        for _ in 0..8 {
            let inputs = random_inputs(&g, &mut rng);
            let eval = g.evaluate_full(&inputs).unwrap();
            for n in g.node_ids() {
                prop_assert!(ic.output(n).holds_for(eval.result(n)));
            }
        }
    }

    /// Every *edge-signal* and *operand* bound holds — these are the claims
    /// the sum-of-addends SignalRefs are built from: the operand entering a
    /// port really is the claimed extension of the claimed low bits of the
    /// source pattern.
    #[test]
    fn operand_claims_hold(seed in any::<u64>(), ops in 3usize..20) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0B5E55ED);
        let g = random_dfg(&mut rng, &GenConfig { num_ops: ops, ..GenConfig::default() });
        let ic = info_content(&g);
        for _ in 0..8 {
            let inputs = random_inputs(&g, &mut rng);
            let eval = g.evaluate_full(&inputs).unwrap();
            for e in g.edge_ids() {
                let edge = g.edge(e);
                let src_pattern = eval.result(edge.src());
                // Reconstruct the signal on the edge and the operand at the
                // destination exactly as the evaluator defines them.
                let on_edge = src_pattern.resize(edge.signedness(), edge.width());
                let sig = ic.edge_signal(e);
                prop_assert!(sig.holds_for(&on_edge), "edge {e}: {on_edge} vs {sig}");
                // The SignalRef foundation: low `i` bits of the *operand*
                // equal low `i` bits of the source pattern, and the operand
                // is the claimed extension of them.
                let dst_t = match g.node(edge.dst()).kind() {
                    dp_dfg::NodeKind::Extension(t) => *t,
                    _ => edge.signedness(),
                };
                let operand = on_edge.resize(dst_t, g.node(edge.dst()).width());
                let claim = ic.operand(e);
                prop_assert!(claim.holds_for(&operand), "operand {e}: {operand} vs {claim}");
                if claim.i > 0 {
                    let low = operand.trunc(claim.i.min(operand.width()));
                    let src_low = src_pattern.trunc(claim.i.min(src_pattern.width()));
                    prop_assert_eq!(low, src_low, "operand low bits come from the source");
                }
            }
        }
    }

    /// Bounds stay sound after the full width-optimization pipeline.
    #[test]
    fn claims_hold_after_transforms(seed in any::<u64>(), ops in 3usize..20) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7245);
        let mut g = random_dfg(&mut rng, &GenConfig { num_ops: ops, ..GenConfig::default() });
        optimize_widths(&mut g);
        let ic = info_content(&g);
        for _ in 0..5 {
            let inputs = random_inputs(&g, &mut rng);
            let eval = g.evaluate_full(&inputs).unwrap();
            for n in g.node_ids() {
                prop_assert!(ic.output(n).holds_for(eval.result(n)));
            }
        }
    }

    /// Required precision is an over-approximation: zeroing bits *above*
    /// r(p) of any op node's result never changes any primary output that
    /// the evaluator reports... equivalently, outputs only depend on the
    /// low r bits. We check the contrapositive cheaply: widths clamped by
    /// the RP transform (which uses exactly r) preserve every output —
    /// already covered elsewhere — so here we check monotonicity: r never
    /// exceeds the node width after the transform.
    #[test]
    fn rp_bounded_by_width_after_transform(seed in any::<u64>(), ops in 3usize..20) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9999);
        let mut g = random_dfg(&mut rng, &GenConfig { num_ops: ops, ..GenConfig::default() });
        optimize_widths(&mut g);
        let rp = required_precision(&g);
        for n in g.op_nodes() {
            prop_assert!(
                rp.output_port(n) <= g.node(n).width(),
                "r exceeds width after clamping at {n}"
            );
        }
    }
}
