//! Tier-1 kernel: widths 1..=64, the whole value inline in one `u64`.
//!
//! Every function takes the width alongside the raw word. Callers maintain
//! the canonical-form invariant (bits at positions `>= width` are zero) on
//! inputs, and every kernel re-establishes it on its result, so a value
//! coming out of this module can be stored directly. Nothing here
//! allocates.

/// All-ones mask of the low `width` bits (`width` in `1..=64`).
#[inline]
pub(crate) fn mask(width: u32) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Modular addition at `width`.
#[inline]
pub(crate) fn add(width: u32, a: u64, b: u64) -> u64 {
    a.wrapping_add(b) & mask(width)
}

/// Modular subtraction at `width`.
#[inline]
pub(crate) fn sub(width: u32, a: u64, b: u64) -> u64 {
    a.wrapping_sub(b) & mask(width)
}

/// Modular two's-complement negation at `width`.
#[inline]
pub(crate) fn neg(width: u32, a: u64) -> u64 {
    a.wrapping_neg() & mask(width)
}

/// Modular multiplication at `width` (low `width` bits of the product).
#[inline]
pub(crate) fn mul(width: u32, a: u64, b: u64) -> u64 {
    a.wrapping_mul(b) & mask(width)
}

/// Bitwise NOT within `width`.
#[inline]
pub(crate) fn not(width: u32, a: u64) -> u64 {
    !a & mask(width)
}

/// The value read as a signed (two's-complement) `i64`: the sign bit at
/// position `width - 1` is propagated to bit 63.
#[inline]
pub(crate) fn to_i64(width: u32, a: u64) -> i64 {
    let shift = 64 - width;
    ((a << shift) as i64) >> shift
}

/// Logical left shift within `width` (top bits fall off, zeros enter).
#[inline]
pub(crate) fn shl(width: u32, a: u64, amount: usize) -> u64 {
    if amount >= width as usize {
        0
    } else {
        (a << amount) & mask(width)
    }
}

/// Logical right shift (zeros enter at the top).
#[inline]
pub(crate) fn lshr(width: u32, a: u64, amount: usize) -> u64 {
    if amount >= width as usize {
        0
    } else {
        a >> amount
    }
}

/// Arithmetic right shift (copies of the sign bit enter at the top).
#[inline]
pub(crate) fn ashr(width: u32, a: u64, amount: usize) -> u64 {
    let amount = amount.min(width as usize - 1);
    ((to_i64(width, a) >> amount) as u64) & mask(width)
}

/// Position of the highest set bit plus one; `0` for the zero value.
#[inline]
pub(crate) fn min_unsigned_width(a: u64) -> usize {
    (64 - a.leading_zeros()) as usize
}

/// Smallest `i >= 1` such that the value equals the sign extension of its
/// `i` least significant bits: the run of copies of the sign bit at the
/// top all compress into the bit below them.
#[inline]
pub(crate) fn min_signed_width(width: u32, a: u64) -> usize {
    // Align the value's MSB with bit 63 so leading_zeros/ones counts stay
    // inside the value (the vacated low bits are zero and only matter for
    // the all-zero value, which the `min` clamps).
    let aligned = a << (64 - width);
    let lead = if aligned >> 63 == 1 {
        aligned.leading_ones()
    } else {
        aligned.leading_zeros().min(width)
    };
    (width - lead + 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(63), u64::MAX >> 1);
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    fn signed_reading() {
        assert_eq!(to_i64(4, 0b1011), -5);
        assert_eq!(to_i64(64, u64::MAX), -1);
        assert_eq!(to_i64(64, 7), 7);
    }

    #[test]
    fn shift_edges() {
        assert_eq!(shl(4, 0b0110, 2), 0b1000);
        assert_eq!(shl(4, 0b0110, 4), 0);
        assert_eq!(lshr(4, 0b0110, 5), 0);
        assert_eq!(ashr(4, 0b1000, 100), 0b1111);
        assert_eq!(ashr(64, u64::MAX, 63), u64::MAX);
    }

    #[test]
    fn min_widths() {
        assert_eq!(min_unsigned_width(0), 0);
        assert_eq!(min_unsigned_width(0b10110), 5);
        assert_eq!(min_signed_width(8, 0), 1);
        assert_eq!(min_signed_width(8, 0xFF), 1);
        assert_eq!(min_signed_width(8, 0b0000_0110), 4);
        assert_eq!(min_signed_width(16, 0xFED4), 10); // -300
        assert_eq!(min_signed_width(64, u64::MAX), 1);
    }
}
