//! `C0xx`: cluster legality (Section 6's safety and synthesizability
//! conditions, re-audited on the *output* of the merge).
//!
//! - **C001** (error): the clustering is structurally malformed
//!   ([`Clustering::validate`] failed). The remaining checks are skipped —
//!   membership queries are meaningless on a malformed partition.
//! - **C002** (error): an operator inside a cluster feeds a multiplier
//!   operand in the same cluster. Synthesizability Condition 1: partial
//!   products are CSA-tree *leaves*; a multiplier operand must arrive on a
//!   cluster input.
//! - **C003** (error, optimized only): a member other than the cluster
//!   output is a **break node** under an independent re-run of the
//!   Section 6 analysis (including the Huffman rebalancing iteration,
//!   reproduced on a scratch copy of the graph). Break nodes must
//!   terminate clusters; merging across one is unsafe.
//! - **C004** (error, optimized only): a cluster-internal edge truncates
//!   real information (the signal claim is trivial, yet the source had
//!   more bits) and the consumer then re-extends it — the classic
//!   truncate-then-extend bottleneck a single sum cannot express.
//!
//! [`Clustering::validate`]: dp_merge::Clustering::validate

use std::collections::HashSet;

use dp_analysis::{info_content, IntrinsicOverrides};
use dp_dfg::{NodeId, OpKind};
use dp_merge::{refine_clusters_with, ClusterError};
use dp_metrics::Recorder;
use dp_trace::TraceLog;

use crate::{Code, Context, Diagnostic, Location, Pass};

/// Cluster-legality checker (see the module docs for the code list).
pub struct ClusterLegality;

impl Pass for ClusterLegality {
    fn name(&self) -> &'static str {
        "cluster-legality"
    }

    fn run(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        let Some(clustering) = cx.clustering else {
            return;
        };
        let g = cx.graph;

        if let Err(e) = clustering.validate(g) {
            let location = match &e {
                ClusterError::Overlap { node } | ClusterError::Unassigned { node } => {
                    Location::Node(*node)
                }
                ClusterError::OutputNotMember { output }
                | ClusterError::Disconnected { output } => Location::Node(*output),
                ClusterError::MultipleOutputs { cluster_output, .. } => {
                    Location::Node(*cluster_output)
                }
                ClusterError::BadInputEdge { edge } => Location::Edge(*edge),
            };
            out.push(Diagnostic::new(Code::C001, location, e.to_string()));
            return;
        }

        let ic = info_content(g);

        // C003: independently recompute the break set. The final break
        // decision depends on the Huffman-refined bounds, so the honest
        // reference is a re-run of the break/cluster/Huffman refinement
        // loop. The width pipeline is skipped: `assume_optimized` promises
        // the graph is already width-optimized, which makes that pass a
        // no-op — and skipping it lets the refinement borrow the graph
        // directly instead of re-optimizing a scratch clone.
        let reference_breaks: Option<HashSet<NodeId>> = cx.assume_optimized.then(|| {
            let mut overrides = IntrinsicOverrides::new();
            let (reference, _) = refine_clusters_with(
                g,
                &mut overrides,
                &mut Recorder::disabled(),
                &mut TraceLog::disabled(),
            );
            reference.break_nodes.iter().copied().collect()
        });

        for (k, c) in clustering.clusters.iter().enumerate() {
            if let Some(breaks) = &reference_breaks {
                for &m in &c.members {
                    if m != c.output && breaks.contains(&m) {
                        out.push(Diagnostic::new(
                            Code::C003,
                            Location::Node(m),
                            format!(
                                "break node merged into the interior of cluster {k}: \
                                 the Section 6 audit requires it to terminate a cluster"
                            ),
                        ));
                    }
                }
            }
            for &m in &c.members {
                for &e in g.node(m).out_edges() {
                    let edge = g.edge(e);
                    let dst = edge.dst();
                    if !c.contains(dst) {
                        continue;
                    }
                    if g.node(dst).kind().op() == Some(OpKind::Mul) {
                        out.push(Diagnostic::new(
                            Code::C002,
                            Location::Edge(e),
                            format!(
                                "operator {m} feeds a multiplier operand inside \
                                 cluster {k}; multiplier operands must be cluster inputs"
                            ),
                        ));
                    }
                    if cx.assume_optimized {
                        let w_e = edge.width();
                        let w_src = g.node(m).width();
                        let w_dst = g.node(dst).width();
                        if w_e < w_src
                            && w_dst > w_e
                            && ic.output(m).i > w_e
                            && ic.edge_signal(e).is_trivial_at(w_e)
                        {
                            out.push(Diagnostic::new(
                                Code::C004,
                                Location::Edge(e),
                                format!(
                                    "edge truncates {} informative bit(s) to {w_e} and \
                                     the consumer re-extends to {w_dst} inside \
                                     cluster {k}: a single sum cannot express this",
                                    ic.output(m).i
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Verifier;
    use dp_analysis::optimize_widths;
    use dp_bitvec::Signedness::*;
    use dp_dfg::{Dfg, OpKind};
    use dp_merge::{cluster_none, Cluster, Clustering};

    /// Figure 1's scenario: an intentionally truncating adder whose result
    /// a consumer re-extends — `n1` must be a break node.
    fn figure1_like() -> Dfg {
        let mut g = Dfg::new();
        let a = g.input("a", 8);
        let b = g.input("b", 8);
        let c = g.input("c", 9);
        let n1 = g.op(OpKind::Add, 7, &[(a, Signed), (b, Signed)]);
        let n3 = g.op_with_edges(OpKind::Add, 10, &[(n1, 9, Signed), (c, 9, Signed)]);
        g.output("r", 10, n3, Signed);
        g
    }

    #[test]
    fn genuine_clustering_passes_the_audit() {
        let mut g = figure1_like();
        let (clustering, report) = dp_merge::cluster_max(&mut g);
        let cx =
            Context::new(&g).clustering(&clustering).transform(&report.transform).optimized(true);
        let report = Verifier::default().run(&cx);
        assert!(!report.has_errors(), "{}", report.render(&g));
    }

    /// Flatten a genuine clustering into one big forged cluster whose
    /// output is the member with no internal fanout.
    fn flatten(g: &Dfg, genuine: &Clustering) -> Clustering {
        let mut members: Vec<_> =
            genuine.clusters.iter().flat_map(|c| c.members.iter().copied()).collect();
        members.sort();
        let output = *members
            .iter()
            .find(|&&m| {
                g.node(m)
                    .out_edges()
                    .iter()
                    .all(|&e| members.binary_search(&g.edge(e).dst()).is_err())
            })
            .expect("some member has only external fanout");
        let mut input_edges: Vec<_> = g
            .edge_ids()
            .filter(|&e| {
                members.binary_search(&g.edge(e).dst()).is_ok()
                    && members.binary_search(&g.edge(e).src()).is_err()
            })
            .collect();
        input_edges.sort();
        Clustering {
            clusters: vec![Cluster { members, output, input_edges }],
            break_nodes: vec![output],
        }
    }

    #[test]
    fn merging_across_a_break_node_raises_c003() {
        let mut g = figure1_like();
        let (genuine, _) = dp_merge::cluster_max(&mut g);
        assert!(genuine.clusters.len() >= 2, "n1 must break into its own cluster");
        // Corrupt: force everything into one cluster, ignoring the break.
        let forged = flatten(&g, &genuine);
        forged.validate(&g).expect("forged clustering is structurally fine");
        let report = Verifier::default().run(&Context::new(&g).clustering(&forged).optimized(true));
        assert!(report.has_code(Code::C003), "{}", report.render(&g));
        assert!(report.has_errors());
    }

    #[test]
    fn internal_multiplier_operand_raises_c002() {
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let b = g.input("b", 4);
        let s = g.op(OpKind::Add, 5, &[(a, Unsigned), (b, Unsigned)]);
        let m = g.op(OpKind::Mul, 9, &[(s, Unsigned), (a, Unsigned)]);
        g.output("o", 9, m, Unsigned);
        let mut members = vec![s, m];
        members.sort();
        let mut input_edges: Vec<_> = g
            .edge_ids()
            .filter(|&e| {
                let edge = g.edge(e);
                (edge.dst() == s || edge.dst() == m) && edge.src() != s
            })
            .collect();
        input_edges.sort();
        let forged = Clustering {
            clusters: vec![Cluster { members, output: m, input_edges }],
            break_nodes: vec![m],
        };
        forged.validate(&g).expect("structurally fine");
        let report = Verifier::default().run(&Context::new(&g).clustering(&forged));
        assert!(report.has_code(Code::C002), "{}", report.render(&g));
    }

    #[test]
    fn truncate_then_extend_inside_a_cluster_raises_c004() {
        // A 9-bit sum squeezed through a 4-bit edge and re-read at 10 bits:
        // the edge drops informative bits, so one flat sum can't express
        // the pair. Forge both adders into a single cluster.
        let mut g = Dfg::new();
        let a = g.input("a", 8);
        let b = g.input("b", 8);
        let c = g.input("c", 9);
        let s1 = g.op(OpKind::Add, 9, &[(a, Unsigned), (b, Unsigned)]);
        let s2 = g.op_with_edges(OpKind::Add, 10, &[(s1, 4, Unsigned), (c, 9, Unsigned)]);
        g.output("r", 10, s2, Unsigned);
        let genuine = cluster_none(&g);
        let forged = flatten(&g, &genuine);
        forged.validate(&g).expect("forged clustering is structurally fine");
        let report = Verifier::default().run(&Context::new(&g).clustering(&forged).optimized(true));
        assert!(report.has_code(Code::C004), "{}", report.render(&g));
    }

    #[test]
    fn singleton_clustering_is_always_legal() {
        let mut g = figure1_like();
        optimize_widths(&mut g);
        let clustering = cluster_none(&g);
        let report =
            Verifier::default().run(&Context::new(&g).clustering(&clustering).optimized(true));
        assert!(!report.has_code(Code::C002));
        assert!(!report.has_code(Code::C003), "{}", report.render(&g));
        assert!(!report.has_code(Code::C004));
    }
}
