//! The synthetic standard-cell library.

use std::fmt;

/// Combinational cell types available to synthesis.
///
/// Half/full adders are deliberately *not* primitive cells: the
/// synthesizer composes them from these gates, which gives static timing
/// and the optimizer a realistic per-gate granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer (used by the optimizer to split heavy fanout).
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
}

impl CellKind {
    /// Number of input pins.
    pub fn arity(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf => 1,
            _ => 2,
        }
    }

    /// All cell kinds.
    pub const ALL: [CellKind; 8] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xnor2,
    ];

    /// The boolean function of the cell.
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            CellKind::Inv => !a,
            CellKind::Buf => a,
            CellKind::Nand2 => !(a && b),
            CellKind::Nor2 => !(a || b),
            CellKind::And2 => a && b,
            CellKind::Or2 => a || b,
            CellKind::Xor2 => a ^ b,
            CellKind::Xnor2 => !(a ^ b),
        }
    }

    /// The boolean function of the cell applied to 64 lanes at once: bit
    /// `l` of each word is the value of that pin in simulation lane `l`,
    /// so one call evaluates the gate under 64 independent input vectors
    /// (the word-parallel encoding of `DESIGN.md` §13).
    ///
    /// ```
    /// use dp_netlist::CellKind;
    /// // Lane 0: 1 NAND 1 = 0; lane 1: 1 NAND 0 = 1.
    /// assert_eq!(CellKind::Nand2.eval_word(0b11, 0b01) & 0b11, 0b10);
    /// ```
    #[inline]
    pub fn eval_word(self, a: u64, b: u64) -> u64 {
        match self {
            CellKind::Inv => !a,
            CellKind::Buf => a,
            CellKind::Nand2 => !(a & b),
            CellKind::Nor2 => !(a | b),
            CellKind::And2 => a & b,
            CellKind::Or2 => a | b,
            CellKind::Xor2 => a ^ b,
            CellKind::Xnor2 => !(a ^ b),
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Inv => "INV",
            CellKind::Buf => "BUF",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
        };
        f.write_str(s)
    }
}

/// Drive strength of a gate instance. Larger drives push load faster at an
/// area premium — the lever the timing-driven optimizer pulls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Drive {
    /// Unit drive.
    X1,
    /// Double drive.
    X2,
    /// Quadruple drive.
    X4,
}

impl Drive {
    /// The numeric drive factor.
    pub fn factor(self) -> f64 {
        match self {
            Drive::X1 => 1.0,
            Drive::X2 => 2.0,
            Drive::X4 => 4.0,
        }
    }

    /// Area multiplier relative to X1.
    pub fn area_factor(self) -> f64 {
        match self {
            Drive::X1 => 1.0,
            Drive::X2 => 1.4,
            Drive::X4 => 2.0,
        }
    }

    /// The next stronger drive, if any.
    pub fn upsize(self) -> Option<Drive> {
        match self {
            Drive::X1 => Some(Drive::X2),
            Drive::X2 => Some(Drive::X4),
            Drive::X4 => None,
        }
    }
}

impl fmt::Display for Drive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Drive::X1 => f.write_str("X1"),
            Drive::X2 => f.write_str("X2"),
            Drive::X4 => f.write_str("X4"),
        }
    }
}

/// Timing/area characterization of one cell kind at unit drive.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CellSpec {
    /// Intrinsic delay, nanoseconds.
    intrinsic_ns: f64,
    /// Extra delay per unit of fanout load at X1 drive, nanoseconds.
    load_ns_per_fanout: f64,
    /// Area, normalized units.
    area: f64,
}

/// A characterized cell library.
///
/// Delay model: `delay = intrinsic + load_slope * fanout / drive`, a
/// standard linear-load approximation. Area:
/// `area = base_area * drive_area_factor`.
#[derive(Debug, Clone)]
pub struct Library {
    specs: [CellSpec; 8],
    name: String,
}

impl Library {
    /// The default synthetic library with 0.25 µm-plausible numbers.
    ///
    /// ```
    /// use dp_netlist::{CellKind, Drive, Library};
    /// let lib = Library::synthetic_025um();
    /// // An XOR is slower and bigger than a NAND.
    /// assert!(lib.delay_ns(CellKind::Xor2, Drive::X1, 1) > lib.delay_ns(CellKind::Nand2, Drive::X1, 1));
    /// assert!(lib.area(CellKind::Xor2, Drive::X1) > lib.area(CellKind::Nand2, Drive::X1));
    /// ```
    pub fn synthetic_025um() -> Self {
        // Order matches CellKind::ALL.
        let specs = [
            CellSpec { intrinsic_ns: 0.040, load_ns_per_fanout: 0.012, area: 1.0 }, // INV
            CellSpec { intrinsic_ns: 0.080, load_ns_per_fanout: 0.008, area: 1.5 }, // BUF
            CellSpec { intrinsic_ns: 0.060, load_ns_per_fanout: 0.014, area: 1.3 }, // NAND2
            CellSpec { intrinsic_ns: 0.070, load_ns_per_fanout: 0.016, area: 1.3 }, // NOR2
            CellSpec { intrinsic_ns: 0.095, load_ns_per_fanout: 0.014, area: 1.8 }, // AND2
            CellSpec { intrinsic_ns: 0.100, load_ns_per_fanout: 0.015, area: 1.8 }, // OR2
            CellSpec { intrinsic_ns: 0.140, load_ns_per_fanout: 0.018, area: 2.7 }, // XOR2
            CellSpec { intrinsic_ns: 0.145, load_ns_per_fanout: 0.018, area: 2.7 }, // XNOR2
        ];
        Library { specs, name: "synthetic-0.25um".to_string() }
    }

    /// The library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn spec(&self, kind: CellKind) -> CellSpec {
        let idx = CellKind::ALL.iter().position(|&k| k == kind).expect("all kinds listed");
        self.specs[idx]
    }

    /// Gate delay in nanoseconds for a given drive and output fanout.
    /// A dangling output still drives one unit of load.
    pub fn delay_ns(&self, kind: CellKind, drive: Drive, fanout: usize) -> f64 {
        let spec = self.spec(kind);
        spec.intrinsic_ns + spec.load_ns_per_fanout * (fanout.max(1) as f64) / drive.factor()
    }

    /// Cell area in normalized units.
    pub fn area(&self, kind: CellKind, drive: Drive) -> f64 {
        self.spec(kind).area * drive.area_factor()
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::synthetic_025um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_truth_tables() {
        use CellKind::*;
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(Nand2.eval(a, b), !(a & b));
            assert_eq!(Nor2.eval(a, b), !(a | b));
            assert_eq!(And2.eval(a, b), a & b);
            assert_eq!(Or2.eval(a, b), a | b);
            assert_eq!(Xor2.eval(a, b), a ^ b);
            assert_eq!(Xnor2.eval(a, b), !(a ^ b));
        }
        assert!(Inv.eval(false, false));
        assert!(Buf.eval(true, false));
    }

    #[test]
    fn upsizing_reduces_loaded_delay_and_increases_area() {
        let lib = Library::synthetic_025um();
        for kind in CellKind::ALL {
            let d1 = lib.delay_ns(kind, Drive::X1, 8);
            let d2 = lib.delay_ns(kind, Drive::X2, 8);
            let d4 = lib.delay_ns(kind, Drive::X4, 8);
            assert!(d1 > d2 && d2 > d4, "{kind}");
            let a1 = lib.area(kind, Drive::X1);
            let a4 = lib.area(kind, Drive::X4);
            assert!(a4 > a1, "{kind}");
        }
    }

    #[test]
    fn fanout_increases_delay() {
        let lib = Library::synthetic_025um();
        assert!(
            lib.delay_ns(CellKind::Nand2, Drive::X1, 10)
                > lib.delay_ns(CellKind::Nand2, Drive::X1, 1)
        );
        // Dangling outputs count as one load.
        assert_eq!(
            lib.delay_ns(CellKind::Nand2, Drive::X1, 0),
            lib.delay_ns(CellKind::Nand2, Drive::X1, 1)
        );
    }

    #[test]
    fn drive_ladder() {
        assert_eq!(Drive::X1.upsize(), Some(Drive::X2));
        assert_eq!(Drive::X2.upsize(), Some(Drive::X4));
        assert_eq!(Drive::X4.upsize(), None);
        assert_eq!(Drive::X2.to_string(), "X2");
    }

    #[test]
    fn arity() {
        assert_eq!(CellKind::Inv.arity(), 1);
        assert_eq!(CellKind::Xor2.arity(), 2);
    }
}
