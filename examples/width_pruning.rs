//! The paper's width-analysis story on its own figures: required
//! precision (Figure 2), information content (Figure 3), and Huffman
//! rebalancing (Figure 4), each shown as a before/after transformation.
//!
//! Run with `cargo run --example width_pruning`.

use datapath_merge::analysis::naive_skewed_bound;
use datapath_merge::prelude::*;
use datapath_merge::testcases::figures;

fn main() {
    // ------------------------------------------------------------------
    // Figure 2: required precision.
    // ------------------------------------------------------------------
    let fig2 = figures::fig2();
    println!("== required precision (paper Figure 2) ==");
    let rp = required_precision(&fig2.g);
    println!(
        "output keeps 5 bits, so r = {} at the 7-bit adder and r = {} at the 9-bit adder",
        rp.output_port(fig2.n1),
        rp.output_port(fig2.n3)
    );
    let mut g2 = fig2.g.clone();
    let report = optimize_widths(&mut g2);
    println!(
        "after Theorem 4.2: N1 {} -> {} bits, N3 {} -> {} bits ({} widths changed)",
        fig2.g.node(fig2.n1).width(),
        g2.node(fig2.n1).width(),
        fig2.g.node(fig2.n3).width(),
        g2.node(fig2.n3).width(),
        report.node_width_changes + report.edge_width_changes
    );
    let (clusters, _) = cluster_max(&mut fig2.g.clone());
    println!("clusters after analysis: {} (G4 is fully mergeable)\n", clusters.len());

    // ------------------------------------------------------------------
    // Figure 3: information content.
    // ------------------------------------------------------------------
    let fig3 = figures::fig3();
    println!("== information content (paper Figure 3) ==");
    let ic = info_content(&fig3.g);
    println!(
        "8-bit adders really carry i(N1) = {}, i(N2) = {}, i(N3) = {}",
        ic.output(fig3.n1),
        ic.output(fig3.n2),
        ic.output(fig3.n3)
    );
    println!(
        "old (width-only) clustering: {} clusters; new: {} cluster(s)",
        cluster_leakage(&fig3.g).len(),
        cluster_max(&mut fig3.g.clone()).0.len()
    );
    let mut g3 = fig3.g.clone();
    optimize_widths(&mut g3);
    println!(
        "G5 -> G5': N1 {} -> {} bits, N3 {} -> {} bits\n",
        fig3.g.node(fig3.n1).width(),
        g3.node(fig3.n1).width(),
        fig3.g.node(fig3.n3).width(),
        g3.node(fig3.n3).width()
    );

    // ------------------------------------------------------------------
    // Figure 4: Huffman rebalancing.
    // ------------------------------------------------------------------
    println!("== Huffman rebalancing (paper Figure 4) ==");
    let terms = figures::fig4_terms();
    println!(
        "five <3,0> addends: skewed chain proves {}, Huffman order proves {}",
        naive_skewed_bound(&terms),
        huffman_bound(&terms)
    );
    println!("(Theorem 5.10: the Huffman order is optimal among all orderings)");

    // The DOT dumps for the curious.
    println!("\nGraphviz of Figure 3 before/after (pipe into `dot -Tsvg`):");
    println!("--- before ---\n{}", fig3.g.to_dot());
    println!("--- after ---\n{}", g3.to_dot());
}
