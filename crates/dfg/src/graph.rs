//! The [`Dfg`] container: nodes, edges, ports and their widths.

use std::fmt;

use dp_bitvec::{BitVec, Signedness};

use crate::OpKind;

/// Identifier of a node inside one [`Dfg`].
///
/// Node ids are dense indices assigned in creation order; they are never
/// invalidated (this crate's transformations rewire and resize rather than
/// delete).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// Identifier of an edge inside one [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The node id with the given dense index. Ids are only meaningful for
    /// the graph whose `num_nodes` exceeds `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index does not fit in `u32`.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("node index fits u32"))
    }
}

impl EdgeId {
    /// The dense index of this edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The edge id with the given dense index. Ids are only meaningful for
    /// the graph whose `num_edges` exceeds `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index does not fit in `u32`.
    pub fn from_index(index: usize) -> EdgeId {
        EdgeId(u32::try_from(index).expect("edge index fits u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// What a node is: the paper's node alphabet plus constants and the
/// extension nodes of Definition 5.5.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A primary input of the design.
    Input,
    /// A primary output of the design.
    Output,
    /// A constant signal (width is the node width).
    Const(BitVec),
    /// A datapath operator.
    Op(OpKind),
    /// An extension node (paper Definition 5.5): adapts its single operand
    /// to the node width, extending with the stored signedness when the
    /// node is wider than the incoming edge and truncating otherwise.
    Extension(Signedness),
}

impl NodeKind {
    /// Returns `true` for operator nodes (`Op`).
    pub fn is_op(&self) -> bool {
        matches!(self, NodeKind::Op(_))
    }

    /// Returns the operator if this is an operator node.
    pub fn op(&self) -> Option<OpKind> {
        match self {
            NodeKind::Op(op) => Some(*op),
            _ => None,
        }
    }
}

/// A node: kind, width `w(N)`, optional name, and its edge lists.
#[derive(Debug, Clone)]
pub struct Node {
    kind: NodeKind,
    width: usize,
    name: Option<String>,
    in_edges: Vec<EdgeId>,
    out_edges: Vec<EdgeId>,
}

impl Node {
    /// The node kind.
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// The node width `w(N)`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The node name, if one was given.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Incoming edges, sorted by destination port.
    pub fn in_edges(&self) -> &[EdgeId] {
        &self.in_edges
    }

    /// Outgoing edges, in creation order.
    pub fn out_edges(&self) -> &[EdgeId] {
        &self.out_edges
    }
}

/// An edge: data flowing from the source node's output port to one input
/// port of the destination node, carrying `w(e)` bits with extension
/// discipline `t(e)`.
#[derive(Debug, Clone)]
pub struct Edge {
    src: NodeId,
    dst: NodeId,
    dst_port: usize,
    width: usize,
    signedness: Signedness,
}

impl Edge {
    /// Source node.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Destination node.
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Input port index at the destination (0 or 1).
    pub fn dst_port(&self) -> usize {
        self.dst_port
    }

    /// Edge width `w(e)`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Edge signedness `t(e)`.
    pub fn signedness(&self) -> Signedness {
        self.signedness
    }
}

/// A data flow graph with datapath operators (paper Section 2.1).
///
/// See the [crate documentation](crate) for the semantics and an example.
#[derive(Debug, Clone, Default)]
pub struct Dfg {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    /// Bumped on every *structural* mutation (node/edge creation, rewiring)
    /// but not on width/signedness updates — see [`Dfg::structure_version`].
    version: u64,
}

impl Dfg {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Dfg::default()
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    fn add_node(&mut self, kind: NodeKind, width: usize, name: Option<String>) -> NodeId {
        assert!(width > 0, "node width must be at least 1");
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node count fits u32"));
        self.nodes.push(Node { kind, width, name, in_edges: Vec::new(), out_edges: Vec::new() });
        self.version += 1;
        id
    }

    /// Adds a primary input of the given width.
    pub fn input(&mut self, name: impl Into<String>, width: usize) -> NodeId {
        let id = self.add_node(NodeKind::Input, width, Some(name.into()));
        self.inputs.push(id);
        id
    }

    /// Adds a constant node carrying `value`.
    pub fn constant(&mut self, value: BitVec) -> NodeId {
        let width = value.width();
        self.add_node(NodeKind::Const(value), width, None)
    }

    /// Adds an operator node of the given width, connecting `operands` in
    /// port order. Each operand edge gets width `w(src)` (carry the full
    /// source result) and the given signedness; use
    /// [`Dfg::op_with_edges`] for explicit edge widths.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match the operator's arity.
    pub fn op(&mut self, kind: OpKind, width: usize, operands: &[(NodeId, Signedness)]) -> NodeId {
        let full: Vec<(NodeId, usize, Signedness)> =
            operands.iter().map(|&(src, t)| (src, self.node(src).width(), t)).collect();
        self.op_with_edges(kind, width, &full)
    }

    /// Adds an operator node with explicit `(source, edge width, edge
    /// signedness)` triples per port.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match the operator's arity, or
    /// if an edge width is zero.
    pub fn op_with_edges(
        &mut self,
        kind: OpKind,
        width: usize,
        operands: &[(NodeId, usize, Signedness)],
    ) -> NodeId {
        assert_eq!(
            operands.len(),
            kind.arity(),
            "operator {kind} takes {} operand(s)",
            kind.arity()
        );
        let id = self.add_node(NodeKind::Op(kind), width, None);
        for (port, &(src, ew, t)) in operands.iter().enumerate() {
            self.connect(src, id, port, ew, t);
        }
        id
    }

    /// Adds an operator node with **no operand edges**. The caller must
    /// [`Dfg::connect`] one edge per port before the graph validates; this
    /// is the escape hatch used by graph transformations and tests.
    pub fn op_unconnected(&mut self, kind: OpKind, width: usize) -> NodeId {
        self.add_node(NodeKind::Op(kind), width, None)
    }

    /// Adds a primary output of the given width fed by `src` over an edge of
    /// width `w(src)` and the given signedness.
    pub fn output(
        &mut self,
        name: impl Into<String>,
        width: usize,
        src: NodeId,
        signedness: Signedness,
    ) -> NodeId {
        let ew = self.node(src).width();
        self.output_with_edge(name, width, src, ew, signedness)
    }

    /// Adds a primary output with an explicit edge width.
    pub fn output_with_edge(
        &mut self,
        name: impl Into<String>,
        width: usize,
        src: NodeId,
        edge_width: usize,
        signedness: Signedness,
    ) -> NodeId {
        let id = self.add_node(NodeKind::Output, width, Some(name.into()));
        self.outputs.push(id);
        self.connect(src, id, 0, edge_width, signedness);
        id
    }

    /// Adds an extension node (Definition 5.5) of the given width and
    /// signedness fed by `src` over an edge of width `edge_width`.
    pub fn extension(
        &mut self,
        width: usize,
        signedness: Signedness,
        src: NodeId,
        edge_width: usize,
        edge_signedness: Signedness,
    ) -> NodeId {
        let id = self.add_node(NodeKind::Extension(signedness), width, None);
        self.connect(src, id, 0, edge_width, edge_signedness);
        id
    }

    /// Adds a raw edge. Prefer the typed constructors above; this is the
    /// escape hatch used by graph transformations.
    ///
    /// # Panics
    ///
    /// Panics if the edge width is zero or a node id is out of range.
    pub fn connect(
        &mut self,
        src: NodeId,
        dst: NodeId,
        dst_port: usize,
        width: usize,
        signedness: Signedness,
    ) -> EdgeId {
        assert!(width > 0, "edge width must be at least 1");
        assert!(src.index() < self.nodes.len(), "source node out of range");
        assert!(dst.index() < self.nodes.len(), "destination node out of range");
        let id = EdgeId(u32::try_from(self.edges.len()).expect("edge count fits u32"));
        self.edges.push(Edge { src, dst, dst_port, width, signedness });
        self.nodes[src.index()].out_edges.push(id);
        let in_edges = &mut self.nodes[dst.index()].in_edges;
        let pos = in_edges
            .iter()
            .position(|&e| self.edges[e.index()].dst_port > dst_port)
            .unwrap_or(in_edges.len());
        in_edges.insert(pos, id);
        self.version += 1;
        id
    }

    /// A counter bumped on every structural mutation: node creation, edge
    /// creation, and [`Dfg::rewire_edge_src`]. Width and signedness updates
    /// do **not** bump it — adjacency caches like [`crate::DfgView`] stay
    /// valid across them. Two equal versions on the *same* graph value mean
    /// the node/edge sets and their connectivity are unchanged.
    pub fn structure_version(&self) -> u64 {
        self.version
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All node ids in creation order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All edge ids in creation order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Operator node ids in creation order.
    pub fn op_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&n| self.node(n).kind().is_op())
    }

    /// The incoming edge feeding `port` of `node`, if any.
    pub fn in_edge_on_port(&self, node: NodeId, port: usize) -> Option<EdgeId> {
        self.node(node).in_edges().iter().copied().find(|&e| self.edge(e).dst_port() == port)
    }

    /// Successor node ids of `node` (one per out-edge; may repeat).
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.node(node).out_edges().iter().map(move |&e| self.edge(e).dst())
    }

    /// Predecessor node ids of `node` in port order (may repeat).
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.node(node).in_edges().iter().map(move |&e| self.edge(e).src())
    }

    // ------------------------------------------------------------------
    // Mutation (used by width-pruning transformations)
    // ------------------------------------------------------------------

    /// Sets `w(N)`.
    ///
    /// # Panics
    ///
    /// Panics if the new width is zero.
    pub fn set_node_width(&mut self, id: NodeId, width: usize) {
        assert!(width > 0, "node width must be at least 1");
        self.nodes[id.index()].width = width;
    }

    /// Sets `w(e)`.
    ///
    /// # Panics
    ///
    /// Panics if the new width is zero.
    pub fn set_edge_width(&mut self, id: EdgeId, width: usize) {
        assert!(width > 0, "edge width must be at least 1");
        self.edges[id.index()].width = width;
    }

    /// Sets `t(e)`.
    pub fn set_edge_signedness(&mut self, id: EdgeId, signedness: Signedness) {
        self.edges[id.index()].signedness = signedness;
    }

    /// Redirects an edge to flow from a different source node, preserving
    /// its destination, width and signedness. Used when splicing extension
    /// nodes into existing fanout (Lemma 5.6).
    pub fn rewire_edge_src(&mut self, id: EdgeId, new_src: NodeId) {
        let old_src = self.edges[id.index()].src;
        let out = &mut self.nodes[old_src.index()].out_edges;
        out.retain(|&e| e != id);
        self.edges[id.index()].src = new_src;
        self.nodes[new_src.index()].out_edges.push(id);
        self.version += 1;
    }

    // ------------------------------------------------------------------
    // Structure queries
    // ------------------------------------------------------------------

    /// Returns `true` if the graph is weakly connected (ignoring edge
    /// direction). The paper requires designs to be connected; generated
    /// subgraphs may not be.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            let node = self.node(n);
            let neighbours = node
                .in_edges()
                .iter()
                .map(|&e| self.edge(e).src())
                .chain(node.out_edges().iter().map(|&e| self.edge(e).dst()));
            for m in neighbours {
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    count += 1;
                    stack.push(m);
                }
            }
        }
        count == self.nodes.len()
    }

    /// Total bit-width of all operator nodes: a quick structural size proxy
    /// used in reports.
    pub fn total_op_width(&self) -> usize {
        self.op_nodes().map(|n| self.node(n).width()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_bitvec::Signedness::*;

    fn tiny() -> (Dfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let b = g.input("b", 4);
        let s = g.op(OpKind::Add, 5, &[(a, Unsigned), (b, Unsigned)]);
        let o = g.output("o", 5, s, Unsigned);
        (g, a, b, s, o)
    }

    #[test]
    fn construction_and_accessors() {
        let (g, a, b, s, o) = tiny();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.inputs(), &[a, b]);
        assert_eq!(g.outputs(), &[o]);
        assert_eq!(g.node(s).width(), 5);
        assert_eq!(g.node(s).kind().op(), Some(OpKind::Add));
        assert_eq!(g.op_nodes().collect::<Vec<_>>(), vec![s]);
        assert_eq!(g.node(a).name(), Some("a"));
        assert!(g.is_connected());
    }

    #[test]
    fn edges_default_to_source_width() {
        let (g, a, _, s, _) = tiny();
        let e = g.in_edge_on_port(s, 0).unwrap();
        assert_eq!(g.edge(e).src(), a);
        assert_eq!(g.edge(e).width(), 4);
        assert_eq!(g.edge(e).dst_port(), 0);
    }

    #[test]
    fn in_edges_sorted_by_port() {
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let b = g.input("b", 4);
        let n = g.add_node(NodeKind::Op(OpKind::Sub), 5, None);
        // Connect port 1 first, then port 0; in_edges must come back sorted.
        g.connect(b, n, 1, 4, Unsigned);
        g.connect(a, n, 0, 4, Unsigned);
        let ports: Vec<usize> =
            g.node(n).in_edges().iter().map(|&e| g.edge(e).dst_port()).collect();
        assert_eq!(ports, vec![0, 1]);
    }

    #[test]
    fn successors_and_predecessors() {
        let (g, a, b, s, o) = tiny();
        assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![s]);
        assert_eq!(g.predecessors(s).collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(g.successors(s).collect::<Vec<_>>(), vec![o]);
    }

    #[test]
    fn mutation_roundtrip() {
        let (mut g, _, _, s, _) = tiny();
        g.set_node_width(s, 3);
        assert_eq!(g.node(s).width(), 3);
        let e = g.in_edge_on_port(s, 0).unwrap();
        g.set_edge_width(e, 2);
        g.set_edge_signedness(e, Signed);
        assert_eq!(g.edge(e).width(), 2);
        assert_eq!(g.edge(e).signedness(), Signed);
    }

    #[test]
    fn rewire_edge_src_moves_fanout() {
        let (mut g, a, _, s, _) = tiny();
        let ext = g.extension(8, Signed, a, 4, Unsigned);
        let e = g.in_edge_on_port(s, 0).unwrap();
        g.rewire_edge_src(e, ext);
        assert_eq!(g.edge(e).src(), ext);
        assert_eq!(g.successors(ext).collect::<Vec<_>>(), vec![s]);
        assert!(!g.node(a).out_edges().contains(&e));
    }

    #[test]
    fn constant_nodes_carry_their_value() {
        let mut g = Dfg::new();
        let c = g.constant(dp_bitvec::BitVec::from_u64(6, 37));
        assert_eq!(g.node(c).width(), 6);
        assert!(matches!(g.node(c).kind(), NodeKind::Const(v) if v.to_u64() == Some(37)));
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut g = Dfg::new();
        let _a = g.input("a", 4);
        let _b = g.input("b", 4);
        assert!(!g.is_connected());
    }

    #[test]
    #[should_panic(expected = "takes 2 operand")]
    fn wrong_arity_panics() {
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let _ = g.op(OpKind::Add, 5, &[(a, Unsigned)]);
    }
}
