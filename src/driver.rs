//! Shared flow-driving machinery behind `dpmc bench` and `dpmc profile`:
//! the per-design bench building block, the slot-ordered worker pool, the
//! self-profile runner, and the telemetry-overhead measurement that gates
//! the observability layer's cost.
//!
//! Everything here is deterministic by construction: workers write only
//! their own result slot (so `--jobs N` output is byte-identical for any
//! job count), event streams are collected per design on the worker that
//! ran it, and the telemetry [`Level`] governs what gets *recorded*, never
//! what the flow *does*.

use std::time::{Duration, Instant};

use dp_analysis::TransformReport;
use dp_obs::{
    degrade_event, kind_events, round_events, span_events, trace_events, DesignEvents, Event,
    Profile,
};
pub use dp_serve::pool::{WorkerError, PANIC_EXIT_CODE, PANIC_FAMILY};
use dp_synth::SynthError;

use crate::error::FlowError;
use crate::prelude::*;

/// Classifies a flow failure for the pool: the message keeps the
/// driver's `"{design}: ..."` prefix convention, while the family and
/// exit code come from the [`FlowError`] taxonomy — so a design that
/// fails inside `dpmc bench --jobs N` reports exactly the taxonomy a
/// standalone `dpmc run` of that design would have exited with.
fn classify_flow(prefix: &str, e: SynthError) -> WorkerError {
    let fe = FlowError::from(e);
    WorkerError::new(fe.family(), fe.exit_code(), format!("{prefix}: {fe}"))
}

/// One design's bench outcome: the `designs[]` row of the dpmc-bench
/// document plus the design's ordered telemetry events, both built on
/// whichever worker thread ran the design.
#[derive(Debug, Clone)]
pub struct BenchOutcome {
    /// The bench report row (`{"design": ..., "flows": [...]}`).
    pub row: Json,
    /// The design's event stream, ready for slot-ordered merging.
    pub events: DesignEvents,
}

/// Per-round counters as the bench schema's `rounds` array. The field
/// names are exactly the [`FlowMetrics`] totals each column sums to —
/// `worklist_pushes`, `ports_visited`, `ports_skipped` — so rounds, flow
/// metrics and the event stream share one naming scheme (and one
/// invariant: each metrics total equals the sum of its round column).
pub fn rounds_json(report: &TransformReport) -> Json {
    Json::Array(
        report
            .history
            .iter()
            .enumerate()
            .map(|(i, r)| {
                Json::obj()
                    .field("round", i + 1)
                    .field("width_delta_bits", r.width_delta_bits)
                    .field("worklist_pushes", r.worklist_pushes)
                    .field("ports_visited", r.ports_visited)
                    .field("ports_skipped", r.ports_skipped)
            })
            .collect(),
    )
}

/// Everything one flow contributes to the event stream, borrowed from
/// wherever the flow ran (the bench driver, `dpmc run`, tests).
pub struct FlowSources<'a> {
    /// Which merge strategy produced the artifacts below.
    pub strategy: MergeStrategy,
    /// The flow's span recorder (stage tree + alloc columns).
    pub rec: &'a Recorder,
    /// The width-pipeline report, when the strategy ran one.
    pub transform: Option<&'a TransformReport>,
    /// The rendered `FlowMetrics` QoR object.
    pub metrics: &'a Json,
    /// Guard retreats, when the flow degraded.
    pub degradation: Option<&'a DegradationReport>,
    /// The flow's decision-provenance log.
    pub tr: &'a TraceLog,
}

/// Appends one flow's event sequence to a design's stream, in the
/// stream's canonical order: flow begin, spans, rounds, op-kind costs,
/// QoR, degradations, trace decisions.
pub fn push_flow_events(out: &mut DesignEvents, src: FlowSources<'_>, level: Level) {
    out.events.push(Event::Flow { strategy: src.strategy.to_string() });
    out.events.extend(span_events(src.rec, level));
    if let Some(t) = src.transform {
        out.events.extend(round_events(t));
        out.events.extend(kind_events(t, level));
    }
    out.events.push(Event::Qor { metrics: src.metrics.clone() });
    if let Some(d) = src.degradation {
        for s in &d.steps {
            out.events.push(degrade_event(s.stage, &s.reason, s.fallback.tag()));
        }
    }
    out.events.extend(trace_events(src.tr));
}

/// Benchmarks one design through both flows; the building block the
/// parallel driver farms out. Pure function of the design and config
/// (modulo the wall-times inside `spans` and the events' `us`/`ns`
/// fields), so designs can run on any worker in any order.
///
/// Recording always runs at full telemetry — the bench report's spans
/// keep their wall times for `--compare` — while `level` gates what
/// reaches the event stream.
pub fn bench_design(
    name: &str,
    g: &Dfg,
    config: &SynthConfig,
    lib: &Library,
    level: Level,
) -> Result<BenchOutcome, WorkerError> {
    let mut flows = Vec::new();
    let mut events = DesignEvents::new(name);
    for strategy in [MergeStrategy::Old, MergeStrategy::New] {
        let mut rec = Recorder::new();
        let mut tr = TraceLog::new();
        let flow = run_flow_with(g, strategy, config, &mut rec, &mut tr)
            .map_err(|e| classify_flow(&format!("{name} [{strategy}]"), e))?;
        let mut netlist = flow.netlist.clone();
        let outer = rec.span("fold_sweep");
        let fold = rec.span("fold_constants");
        crate::opt::fold_constants(&mut netlist);
        rec.finish(fold);
        let sweep = rec.span("sweep");
        let netlist = netlist.sweep();
        rec.finish(sweep);
        rec.finish(outer);
        let sta = rec.span("sta");
        let delay_ns = netlist.longest_path(lib).delay_ns;
        let area = netlist.area(lib);
        rec.finish(sta);
        let mut cx = Context::new(&flow.graph)
            .baseline(g)
            .clustering(&flow.clustering)
            .netlist(&netlist)
            .optimized(strategy == MergeStrategy::New);
        if let Some(m) = &flow.merge {
            cx = cx.transform(&m.transform);
        }
        let report = Verifier::default().run_with(&cx, &mut rec);

        // QoR on the final (folded + swept) netlist, not the raw one.
        let mut metrics = flow.metrics.clone();
        metrics.gates = netlist.num_gates();
        metrics.delay_ns = delay_ns;
        metrics.area = area;
        metrics.verify_errors = report.count(Severity::Error);
        metrics.verify_warnings = report.count(Severity::Warn);
        metrics.verify_infos = report.count(Severity::Info);
        let metrics_json = metrics.to_json();

        let mut row = Json::obj()
            .field("strategy", strategy.to_string())
            .field("metrics", metrics_json.clone());
        if let Some(m) = &flow.merge {
            row = row.field("rounds", rounds_json(&m.transform));
        }
        flows.push(row.field("trace_events", tr.len() as i64).field("spans", rec.to_json()));

        let src = FlowSources {
            strategy,
            rec: &rec,
            transform: flow.merge.as_ref().map(|m| &m.transform),
            metrics: &metrics_json,
            degradation: None,
            tr: &tr,
        };
        push_flow_events(&mut events, src, level);
    }
    Ok(BenchOutcome { row: Json::obj().field("design", name).field("flows", flows), events })
}

/// Runs `count` jobs on a pool of `jobs` worker threads pulling indices
/// from a shared counter. Worker `i` writes only slot `i`, so the
/// returned vector — and anything assembled from it in order — is
/// independent of scheduling. A panicking job becomes an `Err` slot with
/// the `panic` taxonomy and its payload message preserved (and must not
/// take down its worker, which would silently drop every job that worker
/// would have pulled next).
///
/// This is a thin facade over [`dp_serve::pool::run_slots`]: bench and
/// the synthesis service share one pool, so a job failure carries the
/// same [`WorkerError`] family/exit-code taxonomy in a bench error row
/// as in a serve response.
pub fn run_slots<T, F>(count: usize, jobs: usize, run: F) -> Vec<Result<T, WorkerError>>
where
    T: Send,
    F: Fn(usize) -> Result<T, WorkerError> + Sync,
{
    dp_serve::pool::run_slots(count, jobs, run)
}

/// Runs the new-merge flow (plus constant folding, STA and verification)
/// under a full-telemetry recorder and folds the result into a per-phase
/// [`Profile`] — the engine behind `dpmc profile`.
pub fn profile_design(
    name: &str,
    g: &Dfg,
    config: &SynthConfig,
    lib: &Library,
) -> Result<Profile, WorkerError> {
    let mut rec = Recorder::new();
    let mut tr = TraceLog::new();
    let flow = run_flow_with(g, MergeStrategy::New, config, &mut rec, &mut tr)
        .map_err(|e| classify_flow(name, e))?;
    let mut netlist = flow.netlist.clone();
    let outer = rec.span("fold_sweep");
    let fold = rec.span("fold_constants");
    crate::opt::fold_constants(&mut netlist);
    rec.finish(fold);
    let sweep = rec.span("sweep");
    let netlist = netlist.sweep();
    rec.finish(sweep);
    rec.finish(outer);
    let sta = rec.span("sta");
    let _ = netlist.longest_path(lib).delay_ns;
    let _ = netlist.area(lib);
    rec.finish(sta);
    let mut cx = Context::new(&flow.graph)
        .baseline(g)
        .clustering(&flow.clustering)
        .netlist(&netlist)
        .optimized(true);
    if let Some(m) = &flow.merge {
        cx = cx.transform(&m.transform);
    }
    let _ = Verifier::default().run_with(&cx, &mut rec);
    let kinds = flow.merge.as_ref().map(|m| m.transform.kind_counts()).unwrap_or_default();
    Ok(Profile::build(&rec, &kinds))
}

/// The result of one telemetry-overhead measurement (`dpmc profile
/// --overhead-gate PCT`).
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadReport {
    /// Best-of-`trials` flow wall time with telemetry off, microseconds.
    pub off_us: u128,
    /// Best-of-`trials` flow wall time at full telemetry, microseconds.
    pub full_us: u128,
    /// Full-telemetry overhead in percent of the `off` time.
    pub overhead_pct: f64,
    /// Whether QoR metrics and trace decisions were identical at every
    /// [`Level`] — the level must govern recording, never behavior.
    pub invariant: bool,
    /// Whether the measurement passed: invariant, and overhead within
    /// the gate (with a small absolute slack for sub-millisecond flows).
    pub passed: bool,
}

impl OverheadReport {
    /// One-line human rendering.
    pub fn render(&self) -> String {
        format!(
            "telemetry overhead: off {} us, full {} us ({:+.2}%); levels {}: {}",
            self.off_us,
            self.full_us,
            self.overhead_pct,
            if self.invariant { "invariant" } else { "NOT invariant" },
            if self.passed { "PASS" } else { "FAIL" }
        )
    }
}

/// Measures the observability layer's cost on one design and proves its
/// level-invariance: the new-merge flow is run at every [`Level`]
/// (identical QoR documents and trace sequences required), then timed
/// best-of-`trials` at `off` and `full`. Passes when the flow is
/// invariant and full telemetry costs at most `max_pct` percent over
/// `off` (plus a 2 ms absolute slack so sub-millisecond flows cannot
/// fail on scheduling noise).
pub fn telemetry_overhead(
    name: &str,
    g: &Dfg,
    config: &SynthConfig,
    max_pct: f64,
    trials: usize,
) -> Result<OverheadReport, WorkerError> {
    let run_at = |level: Level| -> Result<(String, Vec<Event>), WorkerError> {
        let mut rec = Recorder::with_level(level);
        let mut tr = TraceLog::new();
        let flow = run_flow_with(g, MergeStrategy::New, config, &mut rec, &mut tr)
            .map_err(|e| classify_flow(&format!("{name} [{}]", level.name()), e))?;
        Ok((flow.metrics.to_json().render(), trace_events(&tr)))
    };
    let (qor_off, trace_off) = run_at(Level::Off)?;
    let mut invariant = true;
    for level in [Level::Counters, Level::Full] {
        let (qor, trace) = run_at(level)?;
        invariant &= qor == qor_off && trace == trace_off;
    }

    let wall = |level: Level| -> Result<Duration, WorkerError> {
        let mut best = Duration::MAX;
        for _ in 0..trials.max(1) {
            let mut rec = Recorder::with_level(level);
            let mut tr = TraceLog::new();
            let started = Instant::now();
            run_flow_with(g, MergeStrategy::New, config, &mut rec, &mut tr)
                .map_err(|e| classify_flow(&format!("{name} [{}]", level.name()), e))?;
            best = best.min(started.elapsed());
        }
        Ok(best)
    };
    let off = wall(Level::Off)?;
    let full = wall(Level::Full)?;
    let (off_us, full_us) = (off.as_micros(), full.as_micros());
    let overhead_pct =
        if off_us == 0 { 0.0 } else { (full_us as f64 - off_us as f64) / off_us as f64 * 100.0 };
    let budget = off.mul_f64(1.0 + max_pct / 100.0) + Duration::from_millis(2);
    let passed = invariant && full <= budget;
    Ok(OverheadReport { off_us, full_us, overhead_pct, invariant, passed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_testcases::figures;

    fn fig3() -> Dfg {
        figures::fig3().g
    }

    #[test]
    fn bench_rounds_sum_to_flow_metrics_totals() {
        let g = fig3();
        let lib = Library::synthetic_025um();
        let out = bench_design("fig3", &g, &SynthConfig::default(), &lib, Level::Counters)
            .expect("fig3 benches");
        let flows = out.row.get("flows").and_then(Json::as_array).expect("flows");
        let new = &flows[1];
        let metrics = new.get("metrics").expect("metrics");
        let rounds = new.get("rounds").and_then(Json::as_array).expect("rounds on new-merge");
        assert!(!rounds.is_empty());
        // Satellite invariant: one naming scheme, totals = round sums.
        for key in ["worklist_pushes", "ports_visited", "ports_skipped"] {
            let total = metrics.get(key).and_then(Json::as_i64).expect("total");
            let sum: i64 =
                rounds.iter().map(|r| r.get(key).and_then(Json::as_i64).unwrap_or(0)).sum();
            assert_eq!(total, sum, "{key} total equals its per-round sum");
        }
        // Old-merge runs no width pipeline: no rounds array.
        assert!(flows[0].get("rounds").is_none());
    }

    #[test]
    fn bench_events_cover_the_taxonomy_in_order() {
        let g = fig3();
        let lib = Library::synthetic_025um();
        let out = bench_design("fig3", &g, &SynthConfig::default(), &lib, Level::Counters)
            .expect("fig3 benches");
        let tags: Vec<&str> = out.events.events.iter().map(Event::tag).collect();
        assert_eq!(tags[0], "flow");
        for tag in ["span", "round", "op_kind", "qor", "trace"] {
            assert!(tags.contains(&tag), "stream carries {tag} events: {tags:?}");
        }
        let first_round = tags.iter().position(|&t| t == "round").expect("rounds present");
        let last_span = tags.iter().rposition(|&t| t == "span").expect("spans present");
        assert!(first_round > tags.iter().position(|&t| t == "span").expect("spans"));
        let _ = last_span;
    }

    #[test]
    fn run_slots_is_slot_ordered_for_any_job_count() {
        let run = |i: usize| -> Result<usize, WorkerError> {
            if i == 3 {
                Err(WorkerError::new("analysis", 6, "boom"))
            } else {
                Ok(i * i)
            }
        };
        let one = run_slots(8, 1, run);
        let four = run_slots(8, 4, run);
        assert_eq!(one, four);
        assert_eq!(one[2], Ok(4));
        assert_eq!(one[3], Err(WorkerError::new("analysis", 6, "boom")));
    }

    #[test]
    fn run_slots_contains_panicking_jobs_with_taxonomy() {
        let out = run_slots(4, 2, |i| -> Result<usize, WorkerError> {
            if i == 1 {
                panic!("job 1 exploded");
            }
            Ok(i)
        });
        assert_eq!(out[0], Ok(0));
        let err = out[1].clone().expect_err("job 1 panicked");
        assert_eq!(err.family, PANIC_FAMILY);
        assert_eq!(err.exit_code, PANIC_EXIT_CODE);
        assert_eq!(err.message, "panicked during the run: job 1 exploded");
        assert_eq!(out[2], Ok(2));
        assert_eq!(out[3], Ok(3));
    }

    #[test]
    fn flow_failures_classify_with_the_process_taxonomy() {
        // An adder with no drivers fails structural validation inside the
        // flow; the bench row must carry the same family/exit-code a
        // standalone run would have exited with (graph = 5).
        let mut g = Dfg::new();
        let n = g.op_unconnected(OpKind::Add, 5);
        g.output("o", 5, n, Signedness::Unsigned);
        let lib = Library::synthetic_025um();
        let err = bench_design("empty", &g, &SynthConfig::default(), &lib, Level::Off)
            .expect_err("an empty design cannot synthesize");
        assert_eq!(err.family, "graph");
        assert_eq!(err.exit_code, 5);
        assert!(err.message.starts_with("empty [old-merge]:"), "{}", err.message);
    }

    #[test]
    fn profile_yields_flow_phases_and_kind_costs() {
        let g = fig3();
        let lib = Library::synthetic_025um();
        let p = profile_design("fig3", &g, &SynthConfig::default(), &lib).expect("profiles");
        let paths: Vec<&str> = p.rows.iter().map(|r| r.path.as_str()).collect();
        assert!(paths.iter().any(|p| p.starts_with("flow new-merge")), "{paths:?}");
        assert!(paths.contains(&"fold_sweep"));
        assert!(paths.contains(&"fold_sweep;fold_constants"), "{paths:?}");
        assert!(paths.contains(&"fold_sweep;sweep"), "{paths:?}");
        assert!(paths.contains(&"sta"));
        assert!(!p.kinds.is_empty(), "fig3's adds/muls were visited");
        assert!(!p.collapsed_stacks().is_empty());
    }

    #[test]
    fn telemetry_levels_do_not_change_qor_or_trace() {
        let g = fig3();
        let rep =
            telemetry_overhead("fig3", &g, &SynthConfig::default(), 1e9, 1).expect("measures");
        assert!(rep.invariant, "{rep:?}");
        assert!(rep.passed, "an effectively unbounded gate passes: {rep:?}");
    }
}
