//! Decision provenance for `dpmc explain` and `dpmc dot --annotate`.
//!
//! The width pipeline and clusterer record every decision they make into a
//! [`dp_trace::TraceLog`]. This module turns that log into the two
//! user-facing artifacts:
//!
//! * [`explain_node`] / [`explain_node_json`] — the causal chain behind
//!   one node's final width and cluster assignment, cross-checked against
//!   a fresh required-precision / information-content analysis;
//! * [`annotations`] — [`DotAnnotations`] coloring break nodes and
//!   labelling nodes/edges with `r`, `⟨i,t⟩` and the rule that last
//!   changed them, for annotated DOT export.

use std::collections::HashMap;

use dp_analysis::{info_content, required_precision, InfoAnalysis, PrecisionAnalysis};
use dp_dfg::{Dfg, DotAnnotations, NodeId, NodeKind};
use dp_merge::{cluster_max_with, Clustering, MergeReport};
use dp_metrics::{Json, Recorder};
use dp_trace::{Rule, Subject, TraceEvent, TraceLog};

/// Everything `dpmc explain`/`dpmc dot --annotate` need about one design:
/// the optimized graph, the clustering, the full decision log, and fresh
/// RP/IC analyses of both the input and the optimized graph.
#[derive(Debug)]
pub struct Explained {
    /// The optimized graph (after width pruning and extension insertion).
    pub graph: Dfg,
    /// The final clustering of the optimized graph.
    pub clustering: Clustering,
    /// Clustering statistics (width pipeline rounds, refinements, breaks).
    pub report: MergeReport,
    /// Every decision the pipeline made, in causal topological order.
    pub trace: TraceLog,
    /// Required precision of the *input* design — the facts RP clamping
    /// acted (or declined to act) on in round 1.
    pub rp_before: PrecisionAnalysis,
    /// Required precision of the optimized graph.
    pub rp: PrecisionAnalysis,
    /// Information content of the optimized graph.
    pub ic: InfoAnalysis,
}

/// Runs the new-merge clustering flow over a copy of `g` with provenance
/// recording enabled and gathers the analyses [`explain_node`] reads.
pub fn run_traced(g: &Dfg) -> Explained {
    let rp_before = required_precision(g);
    let mut opt = g.clone();
    let mut rec = Recorder::new();
    let mut trace = TraceLog::new();
    let (clustering, report) = cluster_max_with(&mut opt, &mut rec, &mut trace);
    // Static abstract-interpretation facts over the optimized graph, so an
    // explanation also names what the fine lattices proved about the node.
    let fwd = dp_absint::ForwardAnalysis::compute(&opt);
    let bwd = dp_absint::DemandAnalysis::compute(&opt);
    dp_absint::emit_trace(&opt, &fwd, &bwd, &mut trace);
    let rp = required_precision(&opt);
    let ic = info_content(&opt);
    Explained { graph: opt, clustering, report, trace, rp_before, rp, ic }
}

/// Resolves a `--node`/`--port` spec to a node id: a DSL name from
/// `names`, a node's own name (design inputs and outputs), the display
/// form `nK`, or a bare index.
pub fn resolve_node(
    g: &Dfg,
    names: &HashMap<String, NodeId>,
    spec: &str,
) -> Result<NodeId, String> {
    if let Some(&n) = names.get(spec) {
        return Ok(n);
    }
    if let Some(n) = g.node_ids().find(|&n| g.node(n).name() == Some(spec)) {
        return Ok(n);
    }
    let digits = spec.strip_prefix('n').unwrap_or(spec);
    if let Ok(i) = digits.parse::<usize>() {
        if let Some(n) = g.node_ids().nth(i) {
            return Ok(n);
        }
        return Err(format!("node index {i} out of range (design has {} nodes)", g.num_nodes()));
    }
    let mut known: Vec<&str> = names.keys().map(String::as_str).collect();
    known.sort_unstable();
    Err(format!("unknown node `{spec}` (names: {}; or nK / a bare index)", known.join(", ")))
}

/// How a node participates in the final clustering, as one display line.
fn cluster_role(ex: &Explained, n: NodeId) -> String {
    if ex.clustering.break_nodes.contains(&n) {
        return "break node (own cluster boundary)".to_string();
    }
    for (k, c) in ex.clustering.clusters.iter().enumerate() {
        if c.contains(n) {
            let role = if c.output == n { "output of" } else { "member of" };
            return format!("{role} cluster #{k} ({} nodes, output {})", c.len(), c.output);
        }
    }
    "not clustered (input/output/constant)".to_string()
}

/// The RP verdict line: did Theorem 4.2 have anything to clamp here?
///
/// Printed even when no `RP-CLAMP` event exists, so the explanation names
/// the analysis that *declined* as well as the ones that fired — on
/// Figure 3 the interesting fact is precisely that required precision is
/// not the binding constraint.
fn rp_verdict(orig: &Dfg, rp_before: &PrecisionAnalysis, n: NodeId) -> Option<String> {
    if n.index() >= orig.num_nodes() {
        // Extension nodes inserted by the pipeline have no pre-transform
        // required precision; their EXT-INSERT event tells the story.
        return None;
    }
    let node = orig.node(n);
    if !node.kind().is_op() && !matches!(node.kind(), NodeKind::Extension(_)) {
        return None;
    }
    let w = node.width();
    let r = rp_before.output_port(n);
    Some(if r < w {
        format!("r({n}) = {r} < w = {w} on the input design -> RP-CLAMP applies (Thm 4.2)")
    } else {
        format!("r({n}) = {r} >= w = {w} on the input design -> RP-CLAMP not triggered")
    })
}

fn event_line(e: &TraceEvent) -> String {
    format!("{e}  [{}]", e.rule.describe())
}

/// Events recorded *on* `n` (its decision list), in emission order.
fn decisions_for(ex: &Explained, n: NodeId) -> Vec<TraceEvent> {
    ex.trace.events_for(Subject::Node(n.index())).copied().collect()
}

/// Events on the edges touching `n`, in emission order — the interesting
/// provenance for inputs and outputs, which never carry node events
/// themselves.
fn adjacent_edge_events(ex: &Explained, n: NodeId) -> Vec<TraceEvent> {
    let node = ex.graph.node(n);
    let mut edges: Vec<usize> =
        node.in_edges().iter().chain(node.out_edges()).map(|e| e.index()).collect();
    edges.sort_unstable();
    let mut events: Vec<TraceEvent> = edges
        .into_iter()
        .flat_map(|e| ex.trace.events_for(Subject::Edge(e)).copied().collect::<Vec<_>>())
        .collect();
    events.sort_unstable_by_key(|e| e.id);
    events
}

/// Events on other subjects that causally descend from a decision on `n`.
fn consequences_of(ex: &Explained, n: NodeId, decisions: &[TraceEvent]) -> Vec<TraceEvent> {
    ex.trace
        .events()
        .iter()
        .filter(|e| e.subject != Subject::Node(n.index()))
        .filter(|e| decisions.iter().any(|d| ex.trace.descends_from(e.id, d.id)))
        .copied()
        .collect()
}

/// Renders the causal explanation of `node`'s final width and cluster
/// assignment as plain text (the default `dpmc explain` output).
///
/// `orig` is the graph as parsed (pre-optimization); `label` is the
/// user-facing name for the node (a DSL name or display id).
pub fn explain_node(orig: &Dfg, ex: &Explained, node: NodeId, label: &str) -> String {
    let mut s = String::new();
    let final_node = ex.graph.node(node);
    let after_w = final_node.width();
    let before_w = if node.index() < orig.num_nodes() {
        orig.node(node).width()
    } else {
        after_w // pipeline-inserted extension node: no pre-transform width
    };
    let kind = match final_node.kind() {
        NodeKind::Input => "input".to_string(),
        NodeKind::Output => "output".to_string(),
        NodeKind::Const(_) => "const".to_string(),
        NodeKind::Op(op) => format!("{op}"),
        NodeKind::Extension(t) => format!("ext[{t}]"),
    };
    s.push_str(&format!("node {node} `{label}` ({kind})\n"));
    if after_w == before_w {
        s.push_str(&format!("  final width {after_w} (unchanged)"));
    } else {
        s.push_str(&format!("  final width {after_w} (was {before_w})"));
    }
    s.push_str(&format!(
        ", r = {}, IC = {}\n  {}\n",
        ex.rp.output_port(node),
        ex.ic.output(node),
        cluster_role(ex, node)
    ));

    if let Some(v) = rp_verdict(orig, &ex.rp_before, node) {
        s.push_str(&format!("\nrequired precision (Def 4.1):\n  {v}\n"));
    }

    let decisions = decisions_for(ex, node);
    s.push_str("\ndecisions on this node:\n");
    if decisions.is_empty() {
        s.push_str("  (none - no rule changed this node)\n");
        let adjacent = adjacent_edge_events(ex, node);
        if !adjacent.is_empty() {
            s.push_str("\ndecisions on its edges:\n");
            for e in &adjacent {
                s.push_str(&format!("  {}\n", event_line(e)));
            }
        }
    }
    for d in &decisions {
        s.push_str(&format!("  {}\n", event_line(d)));
        for (depth, a) in ex.trace.ancestors(d.id).into_iter().enumerate() {
            let e = ex.trace.event(a);
            s.push_str(&format!("  {}<- {}\n", "  ".repeat(depth + 1), event_line(e)));
        }
    }

    let consequences = consequences_of(ex, node, &decisions);
    if !consequences.is_empty() {
        s.push_str("\ndownstream consequences:\n");
        for e in &consequences {
            s.push_str(&format!("  {}\n", event_line(e)));
        }
    }
    s
}

fn event_json(e: &TraceEvent) -> Json {
    let base = Json::obj()
        .field("id", e.id.index() as i64)
        .field("rule", e.rule.tag())
        .field("subject", e.subject.to_string())
        .field("before", e.before as i64)
        .field("after", e.after as i64);
    match e.parent {
        Some(p) => base.field("cause", p.index() as i64),
        None => base.field("cause", Json::Null),
    }
}

/// [`explain_node`], as a machine-readable JSON document
/// (`dpmc explain --json`).
pub fn explain_node_json(orig: &Dfg, ex: &Explained, node: NodeId, label: &str) -> Json {
    let decisions = decisions_for(ex, node);
    let consequences = consequences_of(ex, node, &decisions);
    let ic = ex.ic.output(node);
    let width_before = if node.index() < orig.num_nodes() {
        orig.node(node).width()
    } else {
        ex.graph.node(node).width()
    };
    Json::obj()
        .field("node", node.to_string())
        .field("label", label)
        .field("width_before", width_before as i64)
        .field("width_after", ex.graph.node(node).width() as i64)
        .field("required_precision", ex.rp.output_port(node) as i64)
        .field("information_content", ic.to_string())
        .field("cluster", cluster_role(ex, node))
        .field(
            "rp_verdict",
            match rp_verdict(orig, &ex.rp_before, node) {
                Some(v) => Json::Str(v),
                None => Json::Null,
            },
        )
        .field("decisions", Json::Array(decisions.iter().map(event_json).collect()))
        .field("consequences", Json::Array(consequences.iter().map(event_json).collect()))
}

/// Builds the `dpmc dot --annotate` annotations for the optimized graph:
/// break nodes filled red, operator nodes labelled `r=.. IC=⟨i,t⟩` plus
/// the tag of the rule that last changed them, and edges labelled with
/// their reader's required precision, signal IC and last rule.
pub fn annotations(ex: &Explained) -> DotAnnotations {
    let g = &ex.graph;
    let mut ann = DotAnnotations::for_graph(g);
    for n in g.node_ids() {
        let node = g.node(n);
        if !node.kind().is_op() && !matches!(node.kind(), NodeKind::Extension(_)) {
            continue;
        }
        let mut note = format!("r={} {}", ex.rp.output_port(n), ex.ic.output(n));
        if let Some(rule) = last_width_rule(ex, Subject::Node(n.index())) {
            note.push_str(&format!("\\n{}", rule.tag()));
        }
        ann.node_notes[n.index()] = Some(note);
        if ex.clustering.break_nodes.contains(&n) {
            ann.node_fill[n.index()] = Some("#f4cccc".to_string());
        }
    }
    for (k, c) in ex.clustering.clusters.iter().enumerate() {
        if c.len() < 2 {
            continue;
        }
        for &m in &c.members {
            ann.node_fill[m.index()] = Some(cluster_color(k).to_string());
        }
    }
    for e in g.edge_ids() {
        let edge = g.edge(e);
        let mut note = format!("r={} {}", ex.rp.input_port(edge.dst()), ex.ic.edge_signal(e));
        if let Some(rule) = last_width_rule(ex, Subject::Edge(e.index())) {
            note.push_str(&format!("\\n{}", rule.tag()));
        }
        ann.edge_notes[e.index()] = Some(note);
    }
    ann
}

/// The rule that last *changed the width* of a subject — break and
/// cluster bookkeeping events don't count, so a DOT label reads
/// `IC-PRUNE` rather than the cluster assignment that came after it.
fn last_width_rule(ex: &Explained, subject: Subject) -> Option<Rule> {
    ex.trace
        .events_for(subject)
        .filter(|e| {
            matches!(
                e.rule,
                Rule::RpClamp
                    | Rule::RpClampEdge
                    | Rule::IcPrune
                    | Rule::IcPruneEdge
                    | Rule::ExtInsert
            )
        })
        .map(|e| e.rule)
        .last()
}

/// A small qualitative palette for merged clusters (break nodes keep the
/// red fill assigned before this is consulted).
fn cluster_color(k: usize) -> &'static str {
    const PALETTE: [&str; 6] = ["#d9ead3", "#cfe2f3", "#fff2cc", "#d9d2e9", "#fce5cd", "#d0e0e3"];
    PALETTE[k % PALETTE.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_testcases::figures;

    #[test]
    fn fig3_explanation_names_the_ic_chain() {
        let fig = figures::fig3();
        let ex = run_traced(&fig.g);
        let text = explain_node(&fig.g, &ex, fig.n3, "n3");
        assert!(text.contains("IC-PRUNE"), "{text}");
        assert!(text.contains("8 -> 5"), "{text}");
        assert!(text.contains("RP-CLAMP not triggered"), "{text}");
        assert!(text.contains("cluster #0"), "{text}");
    }

    #[test]
    fn fig2_explanation_names_the_rp_clamp() {
        let fig = figures::fig2();
        let ex = run_traced(&fig.g);
        let text = explain_node(&fig.g, &ex, fig.n1, "n1");
        assert!(text.contains("RP-CLAMP applies"), "{text}");
        assert!(text.contains("RP-CLAMP n"), "{text}");
        assert!(text.contains("7 -> 5"), "{text}");
    }

    #[test]
    fn resolve_accepts_names_display_ids_and_indices() {
        let fig = figures::fig3();
        let mut names = HashMap::new();
        names.insert("sum".to_string(), fig.n3);
        assert_eq!(resolve_node(&fig.g, &names, "sum").unwrap(), fig.n3);
        assert_eq!(resolve_node(&fig.g, &names, "A").unwrap(), fig.g.inputs()[0]);
        let display = fig.n3.to_string();
        assert_eq!(resolve_node(&fig.g, &names, &display).unwrap(), fig.n3);
        assert!(resolve_node(&fig.g, &names, "bogus").is_err());
        assert!(resolve_node(&fig.g, &names, "n999").is_err());
    }

    #[test]
    fn annotations_mark_rules_and_clusters() {
        let fig = figures::fig3();
        let ex = run_traced(&fig.g);
        let ann = annotations(&ex);
        let n3 = ann.node_notes[fig.n3.index()].as_deref().unwrap();
        assert!(n3.contains("r="), "{n3}");
        assert!(n3.contains("IC-PRUNE"), "{n3}");
        // fig3 fully merges: every operator shares one cluster fill.
        assert!(ann.node_fill[fig.n1.index()].is_some());
        assert_eq!(ann.node_fill[fig.n1.index()], ann.node_fill[fig.n4.index()]);
        let dot = ex.graph.to_dot_annotated(&ann);
        assert!(dot.contains("IC-PRUNE"), "{dot}");
    }
}
