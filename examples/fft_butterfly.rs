//! The arithmetic core of an FFT butterfly — a complex multiplier — with
//! merging: each output (real and imaginary part) becomes one cluster,
//! so the whole complex multiply costs two carry-propagate adders.
//!
//! Run with `cargo run --example fft_butterfly`.

use datapath_merge::prelude::*;
use datapath_merge::testcases::families;

fn main() {
    let g = families::complex_multiplier(10);
    println!("complex multiplier, 10-bit parts: (ar + j·ai) × (br + j·bi)\n");

    let lib = Library::synthetic_025um();
    let config = SynthConfig::default();

    for strategy in [MergeStrategy::None, MergeStrategy::New] {
        let flow = run_flow(&g, strategy, &config).expect("synthesis");
        let t = flow.netlist.longest_path(&lib);
        println!(
            "{:<10} clusters {:>2}  delay {:>7.3} ns  area {:>8.1}  histogram {:?}",
            strategy.to_string(),
            flow.clustering.len(),
            t.delay_ns,
            flow.netlist.area(&lib),
            flow.clustering.size_histogram()
        );
    }

    // Spot-check with a concrete complex product.
    // (3 - 7j) * (-120 + 9j) = -360 + 27j + 840j - 63 j^2 = -297 + 867j
    let flow = run_flow(&g, MergeStrategy::New, &config).expect("synthesis");
    let inputs = vec![
        BitVec::from_i64(10, 3),
        BitVec::from_i64(10, -7),
        BitVec::from_i64(10, -120),
        BitVec::from_i64(10, 9),
    ];
    let got = flow.netlist.simulate(&inputs).expect("simulates");
    println!(
        "\n(3 - 7j)(-120 + 9j) = {} + {}j",
        got[0].to_i64().expect("fits"),
        got[1].to_i64().expect("fits")
    );
    assert_eq!(got[0].to_i64(), Some(-297));
    assert_eq!(got[1].to_i64(), Some(867));

    // Each part is one sum of two products: ar·br − ai·bi needs a negated
    // product addend, handled inside the carry-save tree.
    let ic = info_content(&flow.graph);
    for cluster in &flow.clustering.clusters {
        let sum = linearize_cluster(&flow.graph, cluster, &ic).expect("linearizes");
        println!(
            "cluster at {}: {} addends, {} negated",
            cluster.output,
            sum.addends.len(),
            sum.addends.iter().filter(|a| a.negated).count()
        );
    }
}
