//! Allocation audit: the `DESIGN.md` §13 contract says every operation on
//! widths at or below 128 bits is allocation-free. The workspace's
//! counting global allocator ([`dp_obs::CountingAlloc`], the same one the
//! `dpmc` binary installs for span allocation tracking) makes that a hard
//! test rather than a hope.

#[global_allocator]
static A: dp_obs::CountingAlloc = dp_obs::CountingAlloc::new();

/// Runs `f` and returns how many heap allocations it performed, read
/// through the dp-metrics probe the allocator registers.
fn allocations_in(f: impl FnOnce()) -> u64 {
    dp_obs::install();
    let probe = dp_metrics::alloc_probe().expect("probe installed by this test binary");
    let before = probe.stats().alloc_count;
    f();
    probe.stats().alloc_count - before
}

use dp_bitvec::{BitVec, Signedness};

#[test]
fn inline_tiers_never_allocate() {
    // Cover both inline tiers and the boundary widths; 129 would be Big
    // and is deliberately excluded (tested below to allocate).
    for w in [1usize, 33, 63, 64, 65, 127, 128] {
        let a = BitVec::from_fn(w, |i| i % 3 != 0);
        let b = BitVec::from_fn(w, |i| i % 5 != 1);
        let n = allocations_in(|| {
            let mut acc = a.wrapping_add(&b);
            acc = acc.wrapping_sub(&b);
            acc = acc.wrapping_mul(&b);
            acc = acc.wrapping_neg();
            acc = acc.and(&b).or(&a).xor(&b).not();
            acc = acc.shl(w / 2).lshr(w / 3).ashr(w / 4);
            let _ = acc.cmp_signed(&b);
            let _ = acc.cmp_unsigned(&b);
            let _ = acc.min_signed_width();
            let _ = acc.min_unsigned_width();
            let _ = acc.is_extension_of(w / 2, Signedness::Signed);
            let _ = acc.to_u128();
            let _ = acc.to_i128();
            let _ = acc.msb();
            let _ = acc.is_zero();
            let c = acc.clone();
            drop(c);
        });
        assert_eq!(n, 0, "width {w} allocated {n} times on the inline path");
    }
}

#[test]
fn inline_width_changes_never_allocate() {
    let v = BitVec::from_fn(63, |i| i % 2 == 0);
    let n = allocations_in(|| {
        // Crossing the u64/u128 boundary stays inline in both directions.
        let m = v.zext(128);
        let s = v.sext(65);
        let t = m.trunc(64);
        let r = s.resize(Signedness::Signed, 100);
        let _ = (t.msb(), r.msb());
    });
    assert_eq!(n, 0, "inline width changes allocated {n} times");
}

#[test]
fn inline_widening_mul_never_allocates() {
    let a = BitVec::from_fn(64, |i| i % 3 == 0);
    let b = BitVec::from_fn(64, |i| i % 7 != 2);
    let n = allocations_in(|| {
        // 64 + 64 = 128-bit product: the largest still-inline result.
        let u = a.widening_mul_unsigned(&b);
        let s = a.widening_mul_signed(&b);
        let _ = (u.msb(), s.msb());
    });
    assert_eq!(n, 0, "inline widening multiply allocated {n} times");
}

#[test]
fn big_tier_in_place_kernels_never_allocate() {
    // The whole point of the `_assign` kernels: Big-tier shifts and masks
    // mutate the limb buffer over itself.
    let mut v = BitVec::from_fn(300, |i| i % 3 == 0);
    let n = allocations_in(|| {
        v.shl_assign(75);
        v.lshr_assign(40);
        v.ashr_assign(10);
        v.mask_assign(200);
        v.shl_assign(300); // >= width: clears in place
    });
    assert_eq!(n, 0, "Big-tier in-place kernels allocated {n} times");
}

#[test]
fn wide_fold_allocates_constant_per_addend() {
    // The merge verifier's addend fold (shift each wide operand, then
    // accumulate) must cost exactly two allocations per addend — one for
    // the operand copy, one for the accumulator update — and none for the
    // shifts themselves.
    let operands: Vec<BitVec> =
        (0..8).map(|k| BitVec::from_fn(256, |i| (i + k) % 5 == 0)).collect();
    let mut acc = BitVec::zero(256);
    let n = allocations_in(|| {
        for (k, op) in operands.iter().enumerate() {
            let mut v = op.clone();
            v.shl_assign(k * 7);
            acc = acc.wrapping_add(&v);
        }
    });
    assert_eq!(
        n,
        2 * operands.len() as u64,
        "wide fold allocated {n} times for {} addends",
        operands.len()
    );
}

#[test]
fn big_tier_does_allocate() {
    // Sanity-check the counter itself: the boxed tier must be visible.
    let n = allocations_in(|| {
        let v = BitVec::zero(129);
        drop(v);
    });
    assert!(n > 0, "Big-tier construction should allocate");
}
