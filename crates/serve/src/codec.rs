//! Byte framing for the store's three artifact granularities, plus the
//! cache-key fingerprints.
//!
//! Every artifact is expressed in **canonical coordinates** — node and
//! edge ids of the canonical twin `decode_canonical(encode_canonical(g))`
//! — so an artifact computed for one design is valid verbatim for every
//! isomorphic (node-id-permuted, alpha-renamed) resubmission:
//!
//! * `analysis` — the width-optimized graph, as its canonical bytes;
//! * `cluster` — the width-optimized graph plus the [`Clustering`]
//!   partitioning it (member/output/input-edge ids index that graph);
//! * `netlist` — the synthesized netlist in the exact `DPN1` wire format
//!   plus the synthesis counters that are not cheap to rederive.
//!
//! Decoders here never trust length fields beyond the buffer and never
//! panic; a malformed payload is a `String` error the service converts
//! into a quarantined cache miss.

use dp_dfg::{decode_canonical, Dfg, EdgeId, NodeId};
use dp_merge::{Cluster, Clustering};
use dp_synth::{AdderKind, CsaStats, MergeStrategy, ReductionKind, SynthConfig};

/// Renders the strategy component of cluster/netlist cache keys.
pub fn strategy_fingerprint(strategy: MergeStrategy) -> &'static str {
    match strategy {
        MergeStrategy::None => "none",
        MergeStrategy::Old => "old",
        MergeStrategy::New => "new",
    }
}

/// Renders the synthesis-config component of netlist cache keys. Every
/// field that changes the emitted gates must appear here — a config not
/// in the key would let one config's netlist answer another's request.
pub fn config_fingerprint(config: &SynthConfig) -> String {
    let adder = match config.adder {
        AdderKind::Ripple => "rca",
        AdderKind::CarrySelect => "csel",
        AdderKind::KoggeStone => "ks",
    };
    let reduction = match config.reduction {
        ReductionKind::Wallace => "wal",
        ReductionKind::Dadda => "dad",
    };
    let sx = if config.sign_ext_compression { "sx1" } else { "sx0" };
    format!("{adder}.{reduction}.{sx}")
}

/// Frames a cluster artifact: the canonical bytes of the graph the
/// clustering partitions, then the clustering itself.
pub fn encode_cluster_artifact(graph_bytes: &[u8], clustering: &Clustering) -> Vec<u8> {
    let mut out = Vec::with_capacity(graph_bytes.len() + 64);
    put_varint(&mut out, graph_bytes.len() as u64);
    out.extend_from_slice(graph_bytes);
    put_varint(&mut out, clustering.clusters.len() as u64);
    for c in &clustering.clusters {
        put_varint(&mut out, c.members.len() as u64);
        for &m in &c.members {
            put_varint(&mut out, m.index() as u64);
        }
        put_varint(&mut out, c.output.index() as u64);
        put_varint(&mut out, c.input_edges.len() as u64);
        for &e in &c.input_edges {
            put_varint(&mut out, e.index() as u64);
        }
    }
    put_varint(&mut out, clustering.break_nodes.len() as u64);
    for &b in &clustering.break_nodes {
        put_varint(&mut out, b.index() as u64);
    }
    out
}

/// Decodes a cluster artifact and re-validates the clustering against the
/// decoded graph, so a corrupt-but-checksummed payload still cannot reach
/// synthesis.
///
/// # Errors
///
/// A description of the defect (truncation, id out of range, invariant
/// violation).
pub fn decode_cluster_artifact(bytes: &[u8]) -> Result<(Dfg, Clustering), String> {
    let mut d = Decoder { bytes, pos: 0 };
    let graph_len = d.length()?;
    let graph_bytes = d.slice(graph_len)?;
    let graph = decode_canonical(graph_bytes).map_err(|e| e.to_string())?;
    let num_clusters = d.length()?;
    let mut clusters = Vec::with_capacity(num_clusters.min(1 << 16));
    for _ in 0..num_clusters {
        let num_members = d.length()?;
        let mut members = Vec::with_capacity(num_members.min(1 << 16));
        for _ in 0..num_members {
            members.push(d.node(&graph)?);
        }
        let output = d.node(&graph)?;
        let num_inputs = d.length()?;
        let mut input_edges = Vec::with_capacity(num_inputs.min(1 << 16));
        for _ in 0..num_inputs {
            input_edges.push(d.edge(&graph)?);
        }
        clusters.push(Cluster { members, output, input_edges });
    }
    let num_breaks = d.length()?;
    let mut break_nodes = Vec::with_capacity(num_breaks.min(1 << 16));
    for _ in 0..num_breaks {
        break_nodes.push(d.node(&graph)?);
    }
    d.finish()?;
    let clustering = Clustering { clusters, break_nodes };
    clustering.validate(&graph).map_err(|e| format!("stored clustering invalid: {e}"))?;
    Ok((graph, clustering))
}

/// Frames a netlist artifact: the synthesis counters a warm response must
/// reproduce byte-for-byte, then the `DPN1` wire bytes.
pub fn encode_netlist_artifact(clusters: usize, csa: CsaStats, wire: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(wire.len() + 16);
    put_varint(&mut out, clusters as u64);
    put_varint(&mut out, csa.cpa_count as u64);
    put_varint(&mut out, csa.csa_depth as u64);
    out.extend_from_slice(wire);
    out
}

/// Splits a netlist artifact back into counters and wire bytes (the wire
/// bytes are decoded and verified by `dp_netlist::Netlist::from_bytes`).
///
/// # Errors
///
/// A description of the truncation.
pub fn decode_netlist_artifact(bytes: &[u8]) -> Result<(usize, CsaStats, &[u8]), String> {
    let mut d = Decoder { bytes, pos: 0 };
    let clusters = d.length()?;
    let cpa_count = d.length()?;
    let csa_depth = d.length()?;
    let wire = &bytes[d.pos..];
    Ok((clusters, CsaStats { csa_depth, cpa_count }, wire))
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Bounds-checked reader over an artifact payload.
struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn byte(&mut self) -> Result<u8, String> {
        let b =
            *self.bytes.get(self.pos).ok_or_else(|| format!("truncated at byte {}", self.pos))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(format!("varint overflow at byte {}", self.pos))
    }

    /// A varint bounded by the remaining payload, usable as an element
    /// count without risking huge pre-allocations.
    fn length(&mut self) -> Result<usize, String> {
        let v = self.varint()?;
        if v > self.bytes.len() as u64 * 8 {
            return Err(format!("implausible length {v} at byte {}", self.pos));
        }
        Ok(v as usize)
    }

    fn slice(&mut self, len: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("truncated slice of {len} at byte {}", self.pos))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn node(&mut self, g: &Dfg) -> Result<NodeId, String> {
        let v = self.length()?;
        if v >= g.num_nodes() {
            return Err(format!("node id {v} out of range at byte {}", self.pos));
        }
        Ok(NodeId::from_index(v))
    }

    fn edge(&mut self, g: &Dfg) -> Result<EdgeId, String> {
        let v = self.length()?;
        if v >= g.num_edges() {
            return Err(format!("edge id {v} out of range at byte {}", self.pos));
        }
        Ok(EdgeId::from_index(v))
    }

    fn finish(&self) -> Result<(), String> {
        if self.pos != self.bytes.len() {
            return Err(format!("{} trailing byte(s) after artifact", self.bytes.len() - self.pos));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_bitvec::Signedness::Unsigned;
    use dp_dfg::{encode_canonical, OpKind};
    use dp_merge::cluster_max;

    fn canonical_twin_and_clustering() -> (Dfg, Clustering, Vec<u8>) {
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let b = g.input("b", 4);
        let c = g.input("c", 4);
        let m = g.op(OpKind::Mul, 8, &[(a, Unsigned), (b, Unsigned)]);
        let s = g.op(OpKind::Add, 9, &[(m, Unsigned), (c, Unsigned)]);
        g.output("r", 9, s, Unsigned);
        let mut gc = decode_canonical(&encode_canonical(&g)).expect("canonical twin");
        let (clustering, _) = cluster_max(&mut gc);
        let bytes = encode_canonical(&gc);
        (gc, clustering, bytes)
    }

    #[test]
    fn cluster_artifact_round_trips() {
        let (gc, clustering, graph_bytes) = canonical_twin_and_clustering();
        let framed = encode_cluster_artifact(&graph_bytes, &clustering);
        let (g2, c2) = decode_cluster_artifact(&framed).expect("decode");
        assert_eq!(format!("{gc:?}"), format!("{g2:?}"));
        assert_eq!(format!("{clustering:?}"), format!("{c2:?}"));
    }

    #[test]
    fn corrupt_cluster_artifacts_error_without_panicking() {
        let (_, clustering, graph_bytes) = canonical_twin_and_clustering();
        let framed = encode_cluster_artifact(&graph_bytes, &clustering);
        for cut in 0..framed.len() {
            assert!(decode_cluster_artifact(&framed[..cut]).is_err(), "truncation at {cut}");
        }
        for i in 0..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x41;
            // Must never panic; flips that survive decoding still passed
            // Clustering::validate against the decoded graph.
            let _ = decode_cluster_artifact(&bad);
        }
        let mut trailing = framed.clone();
        trailing.push(0);
        assert!(decode_cluster_artifact(&trailing).is_err());
    }

    #[test]
    fn netlist_artifact_round_trips() {
        let csa = CsaStats { csa_depth: 3, cpa_count: 2 };
        let framed = encode_netlist_artifact(5, csa, b"DPN1-wire-bytes");
        let (clusters, csa2, wire) = decode_netlist_artifact(&framed).expect("decode");
        assert_eq!(clusters, 5);
        assert_eq!(csa2, csa);
        assert_eq!(wire, b"DPN1-wire-bytes");
        assert!(decode_netlist_artifact(&framed[..2]).is_err());
    }

    #[test]
    fn fingerprints_separate_every_config_axis() {
        let mut seen = std::collections::BTreeSet::new();
        for adder in [AdderKind::Ripple, AdderKind::CarrySelect, AdderKind::KoggeStone] {
            for reduction in [ReductionKind::Wallace, ReductionKind::Dadda] {
                for sx in [false, true] {
                    let fp = config_fingerprint(&SynthConfig {
                        adder,
                        reduction,
                        sign_ext_compression: sx,
                    });
                    assert!(seen.insert(fp), "fingerprint collision");
                }
            }
        }
        assert_eq!(seen.len(), 12);
        assert_eq!(strategy_fingerprint(MergeStrategy::New), "new");
    }
}
