//! Data-flow-graph (DFG) model of datapath designs.
//!
//! This crate implements the design representation of Section 2 of the DAC
//! 2001 paper *Improved Merging of Datapath Operators using Information
//! Content and Required Precision Analysis* (Mathur & Saluja):
//!
//! * a directed acyclic graph whose nodes are **inputs**, **outputs**,
//!   **constants**, **datapath operators** (`+`, `-`, unary `-`, `×`) and
//!   **extension nodes** (the paper's Definition 5.5);
//! * every node has a **width** `w(N)`; every edge has a **width** `w(e)`
//!   and a **signedness** `t(e)` selecting unsigned (zero) or signed
//!   extension;
//! * the width-adaptation semantics of Section 2.2: an edge carries the
//!   `w(e)` least significant bits of its source's result, extending per
//!   `t(e)` when `w(e) > w(N_src)`, and the destination operand is the
//!   signal adapted to `w(N_dst)` the same way.
//!
//! The crate also provides the machinery every later stage relies on:
//! topological orders, post-dominators (for the unique-cluster-output
//! condition), induced-subgraph queries, a **bit-accurate evaluator** (the
//! functional-equivalence oracle used to prove transformations safe), DOT
//! export, and a random-DFG generator for property-based testing.
//!
//! # Example
//!
//! ```
//! use dp_bitvec::{BitVec, Signedness};
//! use dp_dfg::{Dfg, OpKind};
//!
//! // R = (A + B) truncated to 7 bits, then sign-extended into a 9-bit add
//! // with C — the mergeability bottleneck of the paper's Figure 1.
//! let mut g = Dfg::new();
//! let a = g.input("A", 8);
//! let b = g.input("B", 8);
//! let c = g.input("C", 9);
//! let n1 = g.op(OpKind::Add, 7, &[(a, Signedness::Signed), (b, Signedness::Signed)]);
//! let n3 = g.op(OpKind::Add, 9, &[(n1, Signedness::Signed), (c, Signedness::Signed)]);
//! let r = g.output("R", 9, n3, Signedness::Signed);
//! g.validate().unwrap();
//!
//! let out = g.evaluate(&[
//!     BitVec::from_i64(8, 100),
//!     BitVec::from_i64(8, 50),
//!     BitVec::from_i64(9, 1),
//! ]).unwrap();
//! // (100 + 50) keeps only 7 bits -> 150 - 128 = 22; 22 + 1 = 23.
//! assert_eq!(out[&r].to_i64(), Some(23));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod canon;
mod dot;
mod eval;
pub mod gen;
mod graph;
mod op;
mod postdom;
mod topo;
mod validate;
mod view;

pub use canon::{
    canonical_form, decode_canonical, encode_canonical, CanonDecodeError, CanonicalForm,
};
pub use dot::DotAnnotations;
pub use eval::{EvalError, Evaluation};
pub use graph::{Dfg, Edge, EdgeId, Node, NodeId, NodeKind};
pub use op::OpKind;
pub use postdom::PostDominators;
pub use validate::{ValidateError, ValidateErrors};
pub use view::DfgView;
