//! Graphviz DOT export for DFGs.

use std::fmt::Write as _;

use crate::{Dfg, NodeKind};

impl Dfg {
    /// Renders the graph in Graphviz DOT format. Node labels show the kind
    /// and width; edge labels show `w(e)` and `s`/`u` for the signedness —
    /// the same annotations the paper's figures use.
    ///
    /// ```
    /// use dp_dfg::{Dfg, OpKind};
    /// use dp_bitvec::Signedness::Unsigned;
    ///
    /// let mut g = Dfg::new();
    /// let a = g.input("a", 4);
    /// let n = g.op(OpKind::Neg, 4, &[(a, Unsigned)]);
    /// g.output("o", 4, n, Unsigned);
    /// let dot = g.to_dot();
    /// assert!(dot.contains("digraph"));
    /// assert!(dot.contains("a : 4"));
    /// ```
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph dfg {\n  rankdir=TB;\n");
        for n in self.node_ids() {
            let node = self.node(n);
            let (label, shape) = match node.kind() {
                NodeKind::Input => {
                    (format!("{} : {}", node.name().unwrap_or("in"), node.width()), "invhouse")
                }
                NodeKind::Output => {
                    (format!("{} : {}", node.name().unwrap_or("out"), node.width()), "house")
                }
                NodeKind::Const(v) => (format!("{v}"), "box"),
                NodeKind::Op(op) => (format!("{op} : {}", node.width()), "circle"),
                NodeKind::Extension(t) => (format!("ext[{t}] : {}", node.width()), "diamond"),
            };
            let _ = writeln!(s, "  {n} [label=\"{label}\", shape={shape}];");
        }
        for e in self.edge_ids() {
            let edge = self.edge(e);
            let t = if edge.signedness().is_signed() { "s" } else { "u" };
            let _ = writeln!(
                s,
                "  {} -> {} [label=\"{}{}\"];",
                edge.src(),
                edge.dst(),
                edge.width(),
                t
            );
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::{Dfg, OpKind};
    use dp_bitvec::{BitVec, Signedness::*};

    #[test]
    fn dot_mentions_every_node_and_edge() {
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let c = g.constant(BitVec::from_u64(4, 3));
        let m = g.op(OpKind::Mul, 8, &[(a, Signed), (c, Unsigned)]);
        let ext = g.extension(10, Signed, m, 8, Signed);
        g.output("r", 10, ext, Signed);
        let dot = g.to_dot();
        for n in g.node_ids() {
            assert!(dot.contains(&format!("{n} [")), "{n} missing");
        }
        assert_eq!(dot.matches(" -> ").count(), g.num_edges());
        assert!(dot.contains("ext[signed] : 10"));
        assert!(dot.contains("4'b0011"));
    }
}
