//! `N0xx`: gate-level netlist checks.
//!
//! - **N001** (error): an undriven net ([`Netlist::check`]).
//! - **N002** (error): a combinational cycle ([`Netlist::check`]).
//! - **N003** (error): the netlist's port interface (bus names, widths,
//!   order) disagrees with the DFG it claims to implement.
//! - **N004** (warning): a gate whose output drives nothing — dead logic
//!   the synthesizer should have swept.
//! - **N005** (error): a cached fanout count disagrees with a recount
//!   from the gate pins and output buses; downstream timing and drive
//!   sizing read those counts.
//!
//! [`Netlist::check`]: dp_netlist::Netlist::check

use dp_netlist::{NetId, NetlistError};

use crate::{Code, Context, Diagnostic, Location, Pass};

/// Netlist checker (see the module docs for the code list).
pub struct NetlistChecks;

impl Pass for NetlistChecks {
    fn name(&self) -> &'static str {
        "netlist"
    }

    fn run(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        let Some(nl) = cx.netlist else { return };

        match nl.check() {
            Ok(()) => {}
            Err(NetlistError::Undriven { net }) => {
                out.push(Diagnostic::new(Code::N001, Location::Net(net), "net has no driver"));
            }
            Err(NetlistError::Cyclic) => {
                out.push(Diagnostic::new(
                    Code::N002,
                    Location::Global,
                    "netlist contains a combinational cycle",
                ));
            }
        }

        // N003: the netlist must present the same interface as the graph.
        let g = cx.graph;
        let graph_buses = |nodes: &[dp_dfg::NodeId]| -> Vec<(String, usize)> {
            nodes
                .iter()
                .map(|&n| {
                    let node = g.node(n);
                    (node.name().unwrap_or("?").to_string(), node.width())
                })
                .collect()
        };
        let netlist_buses = |buses: &[(String, Vec<NetId>)]| -> Vec<(String, usize)> {
            buses.iter().map(|(name, bits)| (name.clone(), bits.len())).collect()
        };
        for (side, want, got) in [
            ("input", graph_buses(g.inputs()), netlist_buses(nl.inputs())),
            ("output", graph_buses(g.outputs()), netlist_buses(nl.outputs())),
        ] {
            if want != got {
                out.push(Diagnostic::new(
                    Code::N003,
                    Location::Global,
                    format!(
                        "{side} interface mismatch: graph declares {want:?}, \
                         netlist implements {got:?}"
                    ),
                ));
            }
        }

        // N004/N005: recount fanout from first principles. A net's fanout
        // is the number of gate pins plus output-bus bits that read it.
        // Net ids are dense, so the tallies live in arrays indexed by net —
        // the recount streams through the pin arena without hashing.
        let mut recount = vec![0usize; nl.num_nets()];
        let mut known = vec![false; nl.num_nets()];
        for gid in nl.gate_ids() {
            for &net in nl.gate_inputs(gid) {
                recount[net.index()] += 1;
                known[net.index()] = true;
            }
            known[nl.gate_output(gid).index()] = true;
        }
        for (_, bits) in nl.inputs() {
            for &net in bits {
                known[net.index()] = true;
            }
        }
        for (_, bits) in nl.outputs() {
            for &net in bits {
                recount[net.index()] += 1;
                known[net.index()] = true;
            }
        }
        for (i, &is_known) in known.iter().enumerate() {
            if !is_known {
                continue;
            }
            let net = NetId::from_index(i);
            let (expected, cached) = (recount[i], nl.fanout_of(net));
            if cached != expected {
                out.push(Diagnostic::new(
                    Code::N005,
                    Location::Net(net),
                    format!("cached fanout {cached} but {expected} sink(s) actually read the net"),
                ));
            }
        }
        for gid in nl.gate_ids() {
            if recount[nl.gate_output(gid).index()] == 0 {
                out.push(Diagnostic::new(
                    Code::N004,
                    Location::Gate(gid),
                    "gate output drives no gate pin or output bit",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Verifier;
    use dp_bitvec::Signedness::Unsigned;
    use dp_dfg::{Dfg, OpKind};
    use dp_netlist::{CellKind, Netlist};

    fn tiny_design() -> Dfg {
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let b = g.input("b", 4);
        let s = g.op(OpKind::Add, 5, &[(a, Unsigned), (b, Unsigned)]);
        g.output("o", 5, s, Unsigned);
        g
    }

    fn synthesized() -> (Dfg, Netlist) {
        let g = tiny_design();
        let clustering = dp_merge::cluster_none(&g);
        let nl = dp_synth::synthesize(&g, &clustering, &dp_synth::SynthConfig::default())
            .expect("synth");
        (g, nl)
    }

    #[test]
    fn synthesized_netlist_is_clean() {
        let (g, nl) = synthesized();
        let report = Verifier::default().run(&Context::new(&g).netlist(&nl));
        assert!(!report.has_errors(), "{}", report.render(&g));
    }

    #[test]
    fn undriven_net_raises_n001() {
        let g = tiny_design();
        let mut nl = Netlist::new();
        let a = nl.input("a", 1);
        let w = nl.fresh_net(); // never driven
        let x = nl.gate(CellKind::And2, &[a[0], w]);
        nl.output("o", vec![x]);
        let report = Verifier::default().run(&Context::new(&g).netlist(&nl));
        assert!(report.has_code(Code::N001), "{}", report.render(&g));
    }

    #[test]
    fn interface_mismatch_raises_n003() {
        let (g, _) = synthesized();
        let mut nl = Netlist::new();
        let a = nl.input("a", 4);
        // Missing bus "b", wrong output width.
        let x = nl.gate(CellKind::Inv, &[a[0]]);
        nl.output("o", vec![x]);
        let report = Verifier::default().run(&Context::new(&g).netlist(&nl));
        assert!(report.has_code(Code::N003), "{}", report.render(&g));
    }

    #[test]
    fn dangling_gate_raises_n004_not_an_error() {
        let g = tiny_design();
        let mut nl = Netlist::new();
        let a = nl.input("a", 1);
        let kept = nl.gate(CellKind::Inv, &[a[0]]);
        let _dangling = nl.gate(CellKind::Inv, &[a[0]]);
        nl.output("o", vec![kept]);
        let report = Verifier::default().run(&Context::new(&g).netlist(&nl));
        assert!(report.has_code(Code::N004), "{}", report.render(&g));
        // N003 fires (interface mismatch with tiny_design) but N004 itself
        // is only a warning.
        let n004: Vec<_> = report.with_code(Code::N004).collect();
        assert!(n004.iter().all(|d| d.severity() == crate::Severity::Warn));
    }
}
