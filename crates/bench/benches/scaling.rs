//! Scaling study (beyond the paper): how analysis + clustering + synthesis
//! cost grows with design size, and how the merged/unmerged quality gap
//! evolves. Guards the implementation against accidental super-linear
//! behavior in the analyses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_merge::cluster_max;
use dp_netlist::Library;
use dp_synth::{run_flow, MergeStrategy, SynthConfig};
use dp_testcases::csd::multiplierless_fir;
use dp_testcases::families::dot_product;

fn bench_scaling(c: &mut Criterion) {
    let lib = Library::synthetic_025um();
    let config = SynthConfig::default();

    // Print the quality trend once.
    eprintln!("[scaling] dot-product quality (merged vs unmerged):");
    for n in [2usize, 4, 8, 16] {
        let g = dot_product(n, 8);
        let merged = run_flow(&g, MergeStrategy::New, &config).expect("synthesis");
        let unmerged = run_flow(&g, MergeStrategy::None, &config).expect("synthesis");
        eprintln!(
            "  n={n:>2}: merged {:.3} ns vs unmerged {:.3} ns ({} vs {} clusters)",
            merged.netlist.longest_path(&lib).delay_ns,
            unmerged.netlist.longest_path(&lib).delay_ns,
            merged.clustering.len(),
            unmerged.clustering.len()
        );
    }

    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [4usize, 8, 16] {
        let g = dot_product(n, 8);
        group.bench_with_input(BenchmarkId::new("cluster_max_dot", n), &g, |b, g| {
            b.iter(|| cluster_max(&mut g.clone()).0.len())
        });
        group.bench_with_input(BenchmarkId::new("synthesize_dot", n), &g, |b, g| {
            b.iter(|| {
                run_flow(g, MergeStrategy::New, &config).expect("synthesis").netlist.num_gates()
            })
        });
    }
    for taps in [8usize, 16, 32] {
        let g = multiplierless_fir(taps, 8, 6, 42);
        group.bench_with_input(BenchmarkId::new("cluster_max_fir", taps), &g, |b, g| {
            b.iter(|| cluster_max(&mut g.clone()).0.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
