//! Static timing analysis with the linear-load delay model.

use crate::netlist::NetDriver;
use crate::{Library, NetId, Netlist, NetlistError};

/// Arrival time (ns) at every net, assuming all primary inputs arrive at
/// t = 0 — the setup used for the paper's Tables 1 and 2.
#[derive(Debug, Clone)]
pub struct ArrivalTimes {
    at: Vec<f64>,
}

impl ArrivalTimes {
    /// The arrival time at `net` in nanoseconds.
    pub fn at(&self, net: NetId) -> f64 {
        self.at[net.index()]
    }
}

/// Summary of a longest-path analysis.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// The longest input-to-output path delay, nanoseconds.
    pub delay_ns: f64,
    /// The most critical primary output bus and bit.
    pub critical_output: Option<(String, usize)>,
    /// Per-output-bus worst arrival, `(name, ns)`.
    pub per_output: Vec<(String, f64)>,
}

impl Netlist {
    /// Computes arrival times at every net.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational cycle; run
    /// [`Netlist::check`] first for a graceful error.
    pub fn arrival_times(&self, lib: &Library) -> ArrivalTimes {
        let mut at = vec![0.0f64; self.num_nets()];
        for g in self.topo_gates().expect("timing needs an acyclic netlist") {
            let gate = &self.gates[g.index()];
            let input_at = gate.inputs().iter().map(|&n| at[n.index()]).fold(0.0f64, f64::max);
            let d = lib.delay_ns(gate.kind, gate.drive, self.fanout_of(gate.output));
            at[gate.output.index()] = input_at + d;
        }
        ArrivalTimes { at }
    }

    /// Longest input-to-output path delay and per-output summary.
    pub fn longest_path(&self, lib: &Library) -> TimingReport {
        let at = self.arrival_times(lib);
        let mut report =
            TimingReport { delay_ns: 0.0, critical_output: None, per_output: Vec::new() };
        for (name, bits) in self.outputs() {
            let mut worst = 0.0f64;
            for (k, &b) in bits.iter().enumerate() {
                let t = at.at(b);
                if t > worst {
                    worst = t;
                }
                if t > report.delay_ns {
                    report.delay_ns = t;
                    report.critical_output = Some((name.clone(), k));
                }
            }
            report.per_output.push((name.clone(), worst));
        }
        report
    }

    /// The single worst input-to-output path, as the ordered list of gates
    /// from the path's first gate to the critical output's driver. Empty
    /// for gateless netlists.
    pub fn critical_path(&self, lib: &Library) -> Vec<crate::GateId> {
        let at = self.arrival_times(lib);
        // Start at the worst output bit's driver and walk backwards,
        // always following the latest-arriving input.
        let report = self.longest_path(lib);
        let Some((name, bit)) = report.critical_output else {
            return Vec::new();
        };
        let (_, bits) =
            self.outputs().iter().find(|(n, _)| *n == name).expect("critical output exists");
        let mut path = Vec::new();
        let mut net = bits[bit];
        while let Some(g) = self.driver_gate(net) {
            path.push(g);
            let gate_inputs = self.gate_inputs(g);
            let worst = gate_inputs
                .iter()
                .copied()
                .max_by(|&x, &y| at.at(x).partial_cmp(&at.at(y)).expect("finite arrival times"))
                .expect("gates have inputs");
            net = worst;
        }
        path.reverse();
        path
    }

    /// The set of gates on (near-)critical paths: every gate whose output
    /// arrival is within `slack_ns` of the worst path *and* which lies on
    /// a path reaching the critical output. Used by the optimizer to focus
    /// sizing.
    pub fn critical_gates(&self, lib: &Library, slack_ns: f64) -> Vec<crate::GateId> {
        let at = self.arrival_times(lib);
        let worst = self.longest_path(lib).delay_ns;
        // Backward required-time sweep: required(net) = worst at outputs.
        let mut required = vec![f64::INFINITY; self.num_nets()];
        for (_, bits) in self.outputs() {
            for &b in bits {
                required[b.index()] = worst;
            }
        }
        let order = self.topo_gates().expect("checked");
        for &g in order.iter().rev() {
            let gate = &self.gates[g.index()];
            let d = lib.delay_ns(gate.kind, gate.drive, self.fanout_of(gate.output));
            let req_in = required[gate.output.index()] - d;
            for &i in gate.inputs() {
                if matches!(self.drivers[i.index()], NetDriver::Gate(_) | NetDriver::Input) {
                    let r = &mut required[i.index()];
                    if req_in < *r {
                        *r = req_in;
                    }
                }
            }
        }
        order
            .into_iter()
            .filter(|&g| {
                let out = self.gates[g.index()].output;
                let slack = required[out.index()] - at.at(out);
                slack.is_finite() && slack <= slack_ns + 1e-12
            })
            .collect()
    }
}

/// Incremental levelized arrival-time tracker for the optimizer's inner
/// loop.
///
/// A full [`Netlist::arrival_times`] pass costs O(gates) and the sizing
/// loop evaluates one candidate drive change at a time; this structure
/// keeps the arrival array live and, on [`IncrementalSta::update_gate`],
/// recomputes only the fanout cone of the changed gate in topological
/// order, stopping wherever an arrival is unchanged.
///
/// Arrivals are **bit-identical** to a fresh full pass: each recomputed
/// gate folds its input arrivals in the same pin order with the same
/// `f64::max`, and untouched gates keep values that equal what the full
/// pass would compute (their inputs are unchanged).
///
/// The tracker is keyed to one netlist structure; after a structural edit
/// (gate/net creation, rewiring) build a fresh one.
#[derive(Debug, Clone)]
pub struct IncrementalSta {
    /// Gates in topological order.
    order: Vec<crate::GateId>,
    /// `pos[g.index()]` = position of `g` in `order`.
    pos: Vec<u32>,
    /// CSR consumer index: `coff[g]..coff[g + 1]` slices `cons`.
    coff: Vec<u32>,
    cons: Vec<crate::GateId>,
    /// Arrival time per net.
    at: Vec<f64>,
    /// Scratch: gates queued in the current cone walk.
    queued: Vec<bool>,
    /// Scratch: pending cone worklist ordered by topo position.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u32, crate::GateId)>>,
}

impl IncrementalSta {
    /// Builds the tracker with a full arrival pass.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cyclic`] on a combinational loop.
    pub fn new(nl: &Netlist, lib: &Library) -> Result<IncrementalSta, NetlistError> {
        let order = nl.topo_gates()?;
        let mut pos = vec![0u32; nl.num_gates()];
        for (i, &g) in order.iter().enumerate() {
            pos[g.index()] = i as u32;
        }
        let (coff, cons) = nl.gate_consumers();
        let mut sta = IncrementalSta {
            order,
            pos,
            coff,
            cons,
            at: vec![0.0f64; nl.num_nets()],
            queued: vec![false; nl.num_gates()],
            heap: std::collections::BinaryHeap::new(),
        };
        for i in 0..sta.order.len() {
            let g = sta.order[i];
            sta.at[nl.gate_output(g).index()] = sta.eval_gate(nl, lib, g);
        }
        Ok(sta)
    }

    /// Arrival of one gate's output from the current `at` array: max input
    /// arrival (pin order, `f64::max` fold — identical to the full pass)
    /// plus the cell delay under the net's current fanout.
    fn eval_gate(&self, nl: &Netlist, lib: &Library, g: crate::GateId) -> f64 {
        let gate = &nl.gates[g.index()];
        let input_at = gate.inputs().iter().map(|&n| self.at[n.index()]).fold(0.0f64, f64::max);
        input_at + lib.delay_ns(gate.kind, gate.drive, nl.fanout_of(gate.output))
    }

    /// The arrival time at `net` in nanoseconds.
    pub fn arrival(&self, net: NetId) -> f64 {
        self.at[net.index()]
    }

    /// Re-propagates arrivals through the fanout cone of `g` after its
    /// delay changed (a sizing move). Gates are visited in topological
    /// order; propagation stops at gates whose arrival is unchanged.
    pub fn update_gate(&mut self, nl: &Netlist, lib: &Library, g: crate::GateId) {
        self.heap.push(std::cmp::Reverse((self.pos[g.index()], g)));
        self.queued[g.index()] = true;
        while let Some(std::cmp::Reverse((_, g))) = self.heap.pop() {
            self.queued[g.index()] = false;
            let out = nl.gate_output(g).index();
            let new_at = self.eval_gate(nl, lib, g);
            // Exact comparison: equal bits mean the downstream cone cannot
            // observe any difference from a full recompute.
            if new_at.to_bits() == self.at[out].to_bits() {
                continue;
            }
            self.at[out] = new_at;
            let lo = self.coff[g.index()] as usize;
            let hi = self.coff[g.index() + 1] as usize;
            for &c in &self.cons[lo..hi] {
                if !self.queued[c.index()] {
                    self.queued[c.index()] = true;
                    self.heap.push(std::cmp::Reverse((self.pos[c.index()], c)));
                }
            }
        }
    }

    /// Longest input-to-output delay over the current arrivals — the same
    /// scan order and comparison [`Netlist::longest_path`] uses, so the
    /// result is bit-identical to a fresh full analysis.
    pub fn delay_ns(&self, nl: &Netlist) -> f64 {
        let mut worst = 0.0f64;
        for (_, bits) in nl.outputs() {
            for &b in bits {
                let t = self.at[b.index()];
                if t > worst {
                    worst = t;
                }
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellKind, Drive};

    fn chain(n_stages: usize) -> Netlist {
        let mut n = Netlist::new();
        let mut w = n.input("a", 1)[0];
        for _ in 0..n_stages {
            w = n.gate(CellKind::Inv, &[w]);
        }
        n.output("o", vec![w]);
        n
    }

    #[test]
    fn chain_delay_scales_linearly() {
        let lib = Library::synthetic_025um();
        let d1 = chain(1).longest_path(&lib).delay_ns;
        let d10 = chain(10).longest_path(&lib).delay_ns;
        assert!((d10 - 10.0 * d1).abs() < 1e-9, "{d10} vs {}", 10.0 * d1);
    }

    #[test]
    fn parallel_paths_take_max() {
        let lib = Library::synthetic_025um();
        let mut n = Netlist::new();
        let a = n.input("a", 1)[0];
        let fast = n.gate(CellKind::Inv, &[a]);
        let s1 = n.gate(CellKind::Xor2, &[a, fast]);
        let s2 = n.gate(CellKind::Xor2, &[s1, a]);
        let merged = n.gate(CellKind::And2, &[fast, s2]);
        n.output("o", vec![merged]);
        let report = n.longest_path(&lib);
        // Path through the two XORs dominates.
        assert!(report.delay_ns > lib.delay_ns(CellKind::Xor2, Drive::X1, 1) * 2.0);
        assert_eq!(report.critical_output.as_ref().unwrap().0, "o");
    }

    #[test]
    fn upsizing_critical_gate_reduces_delay() {
        let lib = Library::synthetic_025um();
        let mut n = Netlist::new();
        let a = n.input("a", 1)[0];
        let x = n.gate(CellKind::Xor2, &[a, a]);
        // Heavy fanout on x.
        let mut sinks = Vec::new();
        for _ in 0..12 {
            sinks.push(n.gate(CellKind::Inv, &[x]));
        }
        n.output("o", sinks);
        let before = n.longest_path(&lib).delay_ns;
        let g = n.driver_gate(x).unwrap();
        n.set_drive(g, Drive::X4);
        let after = n.longest_path(&lib).delay_ns;
        assert!(after < before);
    }

    #[test]
    fn critical_gates_found_on_the_long_path() {
        let lib = Library::synthetic_025um();
        let mut n = Netlist::new();
        let a = n.input("a", 1)[0];
        // Long path: 5 XORs; short path: 1 INV.
        let mut w = a;
        for _ in 0..5 {
            w = n.gate(CellKind::Xor2, &[w, a]);
        }
        let short = n.gate(CellKind::Inv, &[a]);
        n.output("long", vec![w]);
        n.output("short", vec![short]);
        let crit = n.critical_gates(&lib, 1e-9);
        assert_eq!(crit.len(), 5, "only the XOR chain is critical");
        for g in crit {
            assert_eq!(n.gate_info(g).0, CellKind::Xor2);
        }
    }

    #[test]
    fn critical_path_walks_the_long_chain() {
        let lib = Library::synthetic_025um();
        let mut n = Netlist::new();
        let a = n.input("a", 1)[0];
        let mut w = a;
        let mut chain = Vec::new();
        for _ in 0..4 {
            w = n.gate(CellKind::Xor2, &[w, a]);
            chain.push(n.driver_gate(w).unwrap());
        }
        let short = n.gate(CellKind::Inv, &[a]);
        n.output("long", vec![w]);
        n.output("short", vec![short]);
        let path = n.critical_path(&lib);
        assert_eq!(path, chain, "path follows the XOR chain in order");
    }

    #[test]
    fn incremental_sta_matches_full_pass_bit_for_bit() {
        let lib = Library::synthetic_025um();
        let mut n = Netlist::new();
        let a = n.input("a", 2);
        let x = n.gate(CellKind::Xor2, &[a[0], a[1]]);
        let mut w = x;
        let mut gates = vec![n.driver_gate(x).unwrap()];
        for _ in 0..10 {
            w = n.gate(CellKind::Nand2, &[w, a[0]]);
            gates.push(n.driver_gate(w).unwrap());
        }
        let side = n.gate(CellKind::Inv, &[x]);
        n.output("o", vec![w, side]);
        let mut sta = IncrementalSta::new(&n, &lib).unwrap();
        assert_eq!(sta.delay_ns(&n).to_bits(), n.longest_path(&lib).delay_ns.to_bits());
        // Size a few gates up and down; the tracker must stay bit-identical
        // to a fresh full pass after every move.
        for (i, &g) in gates.iter().enumerate() {
            let drive = if i % 2 == 0 { Drive::X4 } else { Drive::X2 };
            n.set_drive(g, drive);
            sta.update_gate(&n, &lib, g);
            let full = n.arrival_times(&lib);
            for net in 0..n.num_nets() {
                let id = NetId(net as u32);
                assert_eq!(sta.arrival(id).to_bits(), full.at(id).to_bits(), "net {id}");
            }
            assert_eq!(sta.delay_ns(&n).to_bits(), n.longest_path(&lib).delay_ns.to_bits());
        }
    }

    #[test]
    fn empty_netlist_reports_zero() {
        let n = Netlist::new();
        let lib = Library::synthetic_025um();
        let report = n.longest_path(&lib);
        assert_eq!(report.delay_ns, 0.0);
        assert!(report.critical_output.is_none());
    }
}
