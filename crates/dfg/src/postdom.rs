//! Post-dominator computation.
//!
//! The clustering algorithm's Synthesizability Condition 2 needs to know,
//! for a multi-fanout node `N`, whether *every* directed path from `N`
//! reconverges at a single node `N'` before leaving a candidate region —
//! i.e. whether `N` has an immediate post-dominator inside the region. This
//! module computes immediate post-dominators over the whole graph or over
//! an induced subset of nodes, with a virtual sink absorbing every edge
//! that leaves the subset.

use crate::{Dfg, NodeId};

const VIRTUAL: u32 = u32::MAX;

/// Immediate post-dominators of (a subset of) a DFG.
///
/// Produced by [`Dfg::post_dominators`] and
/// [`Dfg::post_dominators_within`]. The *virtual sink* — the merge point of
/// all paths leaving the node set — is represented by `None`.
#[derive(Debug, Clone)]
pub struct PostDominators {
    /// ipdom per node index; `VIRTUAL` for the virtual sink, only
    /// meaningful for in-set nodes.
    ipdom: Vec<u32>,
    in_set: Vec<bool>,
}

impl PostDominators {
    /// The immediate post-dominator of `n`, or `None` if it is the virtual
    /// sink (all of `n`'s paths leave the node set without reconverging
    /// inside it) or `n` is outside the computed set.
    pub fn ipdom(&self, n: NodeId) -> Option<NodeId> {
        if !self.in_set[n.index()] {
            return None;
        }
        match self.ipdom[n.index()] {
            VIRTUAL => None,
            x => Some(NodeId(x)),
        }
    }

    /// Returns `true` if `a` post-dominates `b` within the computed set
    /// (every path from `b` out of the set passes through `a`). A node
    /// post-dominates itself.
    pub fn post_dominates(&self, a: NodeId, b: NodeId) -> bool {
        if !self.in_set[a.index()] || !self.in_set[b.index()] {
            return false;
        }
        let mut cur = b.0;
        loop {
            if cur == a.0 {
                return true;
            }
            match self.ipdom[cur as usize] {
                VIRTUAL => return false,
                next => cur = next,
            }
        }
    }
}

impl Dfg {
    /// Immediate post-dominators over the whole graph. Every node with no
    /// out-edges flows to the virtual sink.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn post_dominators(&self) -> PostDominators {
        self.post_dominators_within(|_| true)
    }

    /// Immediate post-dominators over the induced subgraph of nodes for
    /// which `in_set` returns `true`. Edges leaving the set (and nodes with
    /// no out-edges) lead to the virtual sink.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn post_dominators_within(&self, in_set: impl Fn(NodeId) -> bool) -> PostDominators {
        self.post_dominators_filtered(in_set, |_| true)
    }

    /// Immediate post-dominators over the subgraph of nodes passing
    /// `in_set`, following only edges passing `edge_ok`. Filtered-out edges
    /// lead to the virtual sink, exactly like edges leaving the node set.
    /// The clustering algorithm uses this to treat the out-edges of break
    /// nodes as cuts.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn post_dominators_filtered(
        &self,
        in_set: impl Fn(NodeId) -> bool,
        edge_ok: impl Fn(crate::EdgeId) -> bool,
    ) -> PostDominators {
        let order = self.reverse_topo_order().expect("post-dominators require an acyclic graph");
        let in_set: Vec<bool> = self.node_ids().map(in_set).collect();
        let mut rank = vec![0u32; self.num_nodes()];
        let mut next_rank = 1u32;
        let mut ipdom = vec![VIRTUAL; self.num_nodes()];
        let mut computed = vec![false; self.num_nodes()];

        let intersect = |ipdom: &Vec<u32>, rank: &Vec<u32>, mut a: u32, mut b: u32| -> u32 {
            // Walk the two chains upward (toward smaller rank) until they meet.
            let rk = |x: u32| if x == VIRTUAL { 0 } else { rank[x as usize] };
            while a != b {
                while rk(a) > rk(b) {
                    a = if a == VIRTUAL { VIRTUAL } else { ipdom[a as usize] };
                }
                while rk(b) > rk(a) && a != b {
                    b = if b == VIRTUAL { VIRTUAL } else { ipdom[b as usize] };
                }
                if rk(a) == rk(b) && a != b {
                    // Distinct nodes of equal rank can only both be virtual;
                    // ranks are unique otherwise.
                    a = if a == VIRTUAL { VIRTUAL } else { ipdom[a as usize] };
                    b = if b == VIRTUAL { VIRTUAL } else { ipdom[b as usize] };
                }
            }
            a
        };

        // Reverse topological order: all successors of a node are processed
        // before the node itself, so one pass suffices on a DAG.
        for n in order {
            if !in_set[n.index()] {
                continue;
            }
            rank[n.index()] = next_rank;
            next_rank += 1;
            let mut acc: Option<u32> = None;
            for e in self.node(n).out_edges() {
                let succ = self.edge(*e).dst();
                let target = if edge_ok(*e) && in_set[succ.index()] && computed[succ.index()] {
                    succ.0
                } else {
                    VIRTUAL
                };
                acc = Some(match acc {
                    None => target,
                    Some(prev) => intersect(&ipdom, &rank, prev, target),
                });
            }
            ipdom[n.index()] = acc.unwrap_or(VIRTUAL);
            computed[n.index()] = true;
        }
        let _ = rank; // only needed during construction
        PostDominators { ipdom, in_set }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpKind;
    use dp_bitvec::Signedness::Unsigned;

    /// Diamond: a -> (x, y) -> z -> out. `z` post-dominates `a`.
    fn diamond() -> (Dfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let b = g.input("b", 4);
        let x = g.op(OpKind::Add, 5, &[(a, Unsigned), (b, Unsigned)]);
        let y = g.op(OpKind::Sub, 5, &[(a, Unsigned), (b, Unsigned)]);
        let z = g.op(OpKind::Add, 6, &[(x, Unsigned), (y, Unsigned)]);
        g.output("o", 6, z, Unsigned);
        (g, a, x, y, z)
    }

    #[test]
    fn diamond_reconverges() {
        let (g, a, x, y, z) = diamond();
        let pd = g.post_dominators();
        assert_eq!(pd.ipdom(a), Some(z));
        assert_eq!(pd.ipdom(x), Some(z));
        assert_eq!(pd.ipdom(y), Some(z));
        assert!(pd.post_dominates(z, a));
        assert!(pd.post_dominates(z, x));
        assert!(!pd.post_dominates(x, a));
        // Every node post-dominates itself.
        assert!(pd.post_dominates(a, a));
    }

    #[test]
    fn fanout_to_two_outputs_has_no_ipdom() {
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let x = g.op(OpKind::Neg, 4, &[(a, Unsigned)]);
        let y = g.op(OpKind::Neg, 4, &[(a, Unsigned)]);
        g.output("o1", 4, x, Unsigned);
        g.output("o2", 4, y, Unsigned);
        let pd = g.post_dominators();
        assert_eq!(pd.ipdom(a), None);
        assert!(!pd.post_dominates(x, a));
    }

    #[test]
    fn subset_redirects_to_virtual_sink() {
        let (g, a, x, _y, z) = diamond();
        // Exclude z from the set: a's fanout no longer reconverges inside.
        let pd = g.post_dominators_within(|n| n != z);
        assert_eq!(pd.ipdom(a), None);
        assert_eq!(pd.ipdom(x), None);
        // Queries about out-of-set nodes answer None / false.
        assert_eq!(pd.ipdom(z), None);
        assert!(!pd.post_dominates(z, a));
    }

    #[test]
    fn chain_ipdoms_are_successors() {
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let n1 = g.op(OpKind::Neg, 4, &[(a, Unsigned)]);
        let n2 = g.op(OpKind::Neg, 4, &[(n1, Unsigned)]);
        let o = g.output("o", 4, n2, Unsigned);
        let pd = g.post_dominators();
        assert_eq!(pd.ipdom(a), Some(n1));
        assert_eq!(pd.ipdom(n1), Some(n2));
        assert_eq!(pd.ipdom(n2), Some(o));
        assert_eq!(pd.ipdom(o), None);
        assert!(pd.post_dominates(o, a));
    }

    #[test]
    fn partial_reconvergence() {
        // a fans out to x and y; x feeds z and an extra output; y feeds z.
        // z does NOT post-dominate a (path via o1 escapes).
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let x = g.op(OpKind::Neg, 4, &[(a, Unsigned)]);
        let y = g.op(OpKind::Neg, 4, &[(a, Unsigned)]);
        let z = g.op(OpKind::Add, 5, &[(x, Unsigned), (y, Unsigned)]);
        g.output("o1", 4, x, Unsigned);
        g.output("o2", 5, z, Unsigned);
        let pd = g.post_dominators();
        assert_eq!(pd.ipdom(a), None);
        assert!(!pd.post_dominates(z, a));
    }
}
