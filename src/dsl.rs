//! A small text format for describing datapath designs.
//!
//! The `dpmc` command-line tool reads this format, so designs can be
//! clustered and synthesized without writing Rust. One statement per
//! line; `#` starts a comment.
//!
//! ```text
//! # dot product with a truncate-then-extend bottleneck
//! input  a 8
//! input  b 8
//! const  k = 4'b0101
//! p  = mul 16  a:s b:s
//! s  = add 12  p:s/12 k:u      # edge width 12, unsigned coefficient edge
//! n  = shl3 15 s:s             # s << 3
//! output r 15  n:s
//! ```
//!
//! Grammar per line:
//!
//! ```text
//! input  NAME WIDTH
//! const  NAME = <verilog literal>        e.g. 6'b000101
//! NAME = OP WIDTH OPERAND [OPERAND]      OP ∈ add | sub | neg | mul | shlK
//! output NAME WIDTH OPERAND
//! ```
//!
//! An operand is `NAME[:s|:u][/EDGEWIDTH]`; the signedness defaults to
//! unsigned and the edge width to the source's width.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use dp_bitvec::{BitVec, Signedness};
use dp_dfg::{Dfg, NodeId, OpKind};

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for DslError {}

/// Parses a design description into a [`Dfg`].
///
/// # Errors
///
/// Returns the first [`DslError`] encountered; the resulting graph is also
/// validated structurally.
///
/// ```
/// let g = datapath_merge::dsl::parse_design(
///     "input a 4\ninput b 4\ns = add 5 a b\noutput o 5 s",
/// ).unwrap();
/// assert_eq!(g.inputs().len(), 2);
/// assert_eq!(g.op_nodes().count(), 1);
/// ```
pub fn parse_design(text: &str) -> Result<Dfg, DslError> {
    parse_design_named(text).map(|(g, _)| g)
}

/// [`parse_design`], also returning the mapping from DSL names to node
/// ids (inputs, constants and operators; outputs are addressable through
/// [`dp_dfg::Node::name`]). `dpmc explain --node` uses this so nodes can
/// be referred to by the names the design file declares.
///
/// # Errors
///
/// Returns the first [`DslError`] encountered; the resulting graph is also
/// validated structurally.
pub fn parse_design_named(text: &str) -> Result<(Dfg, HashMap<String, NodeId>), DslError> {
    let mut g = Dfg::new();
    let mut names: HashMap<String, NodeId> = HashMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let err = |message: String| DslError { line: line_no, message };
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "input" => {
                let [_, name, width] = tokens[..] else {
                    return Err(err("expected: input NAME WIDTH".into()));
                };
                let width = parse_width(width).map_err(&err)?;
                define(&mut names, name, g.input(name, width)).map_err(&err)?;
            }
            "const" => {
                if tokens.len() != 4 || tokens[2] != "=" {
                    return Err(err("expected: const NAME = <literal>".into()));
                }
                let value: BitVec =
                    tokens[3].parse().map_err(|e| err(format!("bad literal: {e}")))?;
                define(&mut names, tokens[1], g.constant(value)).map_err(&err)?;
            }
            "output" => {
                if tokens.len() != 4 {
                    return Err(err("expected: output NAME WIDTH OPERAND".into()));
                }
                let width = parse_width(tokens[2]).map_err(&err)?;
                let op = parse_operand(&g, &names, tokens[3]).map_err(&err)?;
                g.output_with_edge(tokens[1], width, op.node, op.edge_width, op.signedness);
            }
            name => {
                // NAME = OP WIDTH OPERAND [OPERAND]
                if tokens.len() < 4 || tokens[1] != "=" {
                    return Err(err("expected: NAME = OP WIDTH OPERAND [OPERAND]".into()));
                }
                let op = parse_op(tokens[2]).map_err(&err)?;
                let width = parse_width(tokens[3]).map_err(&err)?;
                let operand_tokens = &tokens[4..];
                if operand_tokens.len() != op.arity() {
                    return Err(err(format!(
                        "{} takes {} operand(s), found {}",
                        tokens[2],
                        op.arity(),
                        operand_tokens.len()
                    )));
                }
                let operands: Vec<Operand> = operand_tokens
                    .iter()
                    .map(|t| parse_operand(&g, &names, t))
                    .collect::<Result<_, _>>()
                    .map_err(&err)?;
                let spec: Vec<(NodeId, usize, Signedness)> =
                    operands.iter().map(|o| (o.node, o.edge_width, o.signedness)).collect();
                define(&mut names, name, g.op_with_edges(op, width, &spec)).map_err(&err)?;
            }
        }
    }
    g.validate().map_err(|e| DslError {
        line: text.lines().count(),
        message: format!("invalid design: {e}"),
    })?;
    Ok((g, names))
}

struct Operand {
    node: NodeId,
    edge_width: usize,
    signedness: Signedness,
}

fn define(names: &mut HashMap<String, NodeId>, name: &str, id: NodeId) -> Result<(), String> {
    if names.insert(name.to_string(), id).is_some() {
        return Err(format!("name `{name}` defined twice"));
    }
    Ok(())
}

fn parse_width(t: &str) -> Result<usize, String> {
    let w: usize = t.parse().map_err(|_| format!("bad width `{t}`"))?;
    if w == 0 {
        return Err("width must be at least 1".into());
    }
    Ok(w)
}

fn parse_op(t: &str) -> Result<OpKind, String> {
    match t {
        "add" => Ok(OpKind::Add),
        "sub" => Ok(OpKind::Sub),
        "neg" => Ok(OpKind::Neg),
        "mul" => Ok(OpKind::Mul),
        _ => {
            if let Some(k) = t.strip_prefix("shl") {
                let k: u8 = k.parse().map_err(|_| format!("bad shift `{t}`"))?;
                Ok(OpKind::Shl(k))
            } else {
                Err(format!("unknown operator `{t}`"))
            }
        }
    }
}

fn parse_operand(g: &Dfg, names: &HashMap<String, NodeId>, t: &str) -> Result<Operand, String> {
    let (rest, edge_width) = match t.split_once('/') {
        Some((rest, w)) => (rest, Some(parse_width(w)?)),
        None => (t, None),
    };
    let (name, signedness) = match rest.split_once(':') {
        Some((name, "s")) | Some((name, "signed")) => (name, Signedness::Signed),
        Some((name, "u")) | Some((name, "unsigned")) => (name, Signedness::Unsigned),
        Some((_, other)) => return Err(format!("bad signedness `{other}` (use s or u)")),
        None => (rest, Signedness::Unsigned),
    };
    let node = *names.get(name).ok_or_else(|| format!("unknown name `{name}`"))?;
    Ok(Operand { node, edge_width: edge_width.unwrap_or_else(|| g.node(node).width()), signedness })
}

/// Renders a graph back into the DSL (a best-effort inverse of
/// [`parse_design`]: node names are regenerated).
///
/// ```
/// let g = datapath_merge::dsl::parse_design(
///     "input a 4\ns = neg 5 a:s\noutput o 5 s:s",
/// ).unwrap();
/// let text = datapath_merge::dsl::to_dsl(&g);
/// let g2 = datapath_merge::dsl::parse_design(&text).unwrap();
/// assert_eq!(g.num_nodes(), g2.num_nodes());
/// ```
pub fn to_dsl(g: &Dfg) -> String {
    use dp_dfg::NodeKind;
    let mut s = String::new();
    let name_of = |n: NodeId| -> String {
        match g.node(n).kind() {
            NodeKind::Input | NodeKind::Output => g.node(n).name().unwrap_or("x").to_string(),
            _ => format!("n{}", n.index()),
        }
    };
    let operand_of = |e: dp_dfg::EdgeId| -> String {
        let edge = g.edge(e);
        let t = if edge.signedness().is_signed() { "s" } else { "u" };
        format!("{}:{}/{}", name_of(edge.src()), t, edge.width())
    };
    for n in g.topo_order().expect("valid graph") {
        let node = g.node(n);
        match node.kind() {
            NodeKind::Input => {
                s.push_str(&format!("input {} {}\n", name_of(n), node.width()));
            }
            NodeKind::Const(v) => {
                s.push_str(&format!("const {} = {}\n", name_of(n), v));
            }
            NodeKind::Op(op) => {
                let opname = match op {
                    OpKind::Add => "add".to_string(),
                    OpKind::Sub => "sub".to_string(),
                    OpKind::Neg => "neg".to_string(),
                    OpKind::Mul => "mul".to_string(),
                    OpKind::Shl(k) => format!("shl{k}"),
                };
                let ops: Vec<String> = node.in_edges().iter().map(|&e| operand_of(e)).collect();
                s.push_str(&format!(
                    "{} = {} {} {}\n",
                    name_of(n),
                    opname,
                    node.width(),
                    ops.join(" ")
                ));
            }
            NodeKind::Extension(t) => {
                // Extension nodes have no DSL form; emit the equivalent
                // 1-operand add of a zero constant... they only appear in
                // transformed graphs, which are not expected to round-trip.
                s.push_str(&format!(
                    "# extension node {} ({t}, width {}) has no DSL form\n",
                    name_of(n),
                    node.width()
                ));
            }
            NodeKind::Output => {
                let e = node.in_edges()[0];
                s.push_str(&format!("output {} {} {}\n", name_of(n), node.width(), operand_of(e)));
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
# sum of products
input a 4
input b 4
input c 4
input d 4
p1 = mul 8 a:s b:s
p2 = mul 8 c:s d:s
s  = add 9 p1:s p2:s
output r 9 s:s
";

    #[test]
    fn parses_a_sum_of_products() {
        let g = parse_design(SAMPLE).unwrap();
        assert_eq!(g.inputs().len(), 4);
        assert_eq!(g.op_nodes().count(), 3);
        assert_eq!(g.outputs().len(), 1);
        let r = g.outputs()[0];
        assert_eq!(g.node(r).width(), 9);
    }

    #[test]
    fn parsed_design_computes() {
        use dp_bitvec::BitVec;
        let g = parse_design(SAMPLE).unwrap();
        let out = g
            .evaluate(&[
                BitVec::from_i64(4, -3),
                BitVec::from_i64(4, 5),
                BitVec::from_i64(4, 2),
                BitVec::from_i64(4, 7),
            ])
            .unwrap();
        assert_eq!(out[&g.outputs()[0]].to_i64(), Some(-3 * 5 + 2 * 7));
    }

    #[test]
    fn constants_edge_widths_and_shifts() {
        let text =
            "input a 4\nconst k = 3'b101\nm = mul 7 a:u k:u\nt = shl2 9 m:u/7\noutput o 9 t:u";
        let g = parse_design(text).unwrap();
        use dp_bitvec::BitVec;
        let out = g.evaluate(&[BitVec::from_u64(4, 6)]).unwrap();
        assert_eq!(out[&g.outputs()[0]].to_u64(), Some(6 * 5 * 4));
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let err = parse_design("input a 4\nbogus line here\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));

        let err = parse_design("input a 0").unwrap_err();
        assert!(err.message.contains("width"));

        let err = parse_design("input a 4\ns = add 5 a q").unwrap_err();
        assert!(err.message.contains("unknown name `q`"));

        let err = parse_design("input a 4\ns = neg 5 a a").unwrap_err();
        assert!(err.message.contains("takes 1 operand"));

        let err = parse_design("input a 4\ninput a 5").unwrap_err();
        assert!(err.message.contains("defined twice"));

        let err = parse_design("input a 4\ns = frob 5 a").unwrap_err();
        assert!(err.message.contains("unknown operator"));
    }

    #[test]
    fn round_trip_preserves_structure_and_function() {
        use dp_bitvec::BitVec;
        let g = parse_design(SAMPLE).unwrap();
        let text = to_dsl(&g);
        let g2 = parse_design(&text).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(g.num_edges(), g2.num_edges());
        let inputs = vec![
            BitVec::from_i64(4, 7),
            BitVec::from_i64(4, -8),
            BitVec::from_i64(4, 3),
            BitVec::from_i64(4, -1),
        ];
        let o1 = g.evaluate(&inputs).unwrap();
        let o2 = g2.evaluate(&inputs).unwrap();
        assert_eq!(o1[&g.outputs()[0]], o2[&g2.outputs()[0]]);
    }

    #[test]
    fn round_trip_random_designs() {
        use dp_dfg::gen::{random_dfg, random_inputs, GenConfig};
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xD51);
        for case in 0..20 {
            let g = random_dfg(&mut rng, &GenConfig::default());
            let text = to_dsl(&g);
            let g2 = parse_design(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
            for _ in 0..10 {
                let inputs = random_inputs(&g, &mut rng);
                let o1 = g.evaluate(&inputs).unwrap();
                let o2 = g2.evaluate(&inputs).unwrap();
                for (a, b) in g.outputs().iter().zip(g2.outputs()) {
                    assert_eq!(o1[a], o2[b], "case {case}");
                }
            }
        }
    }
}
