//! Regenerates the paper's Table 2: timing-driven optimization runtime,
//! final delay and final area for the old and new merging flows.

use dp_bench::{render_table2, table2};
use dp_netlist::Library;
use dp_synth::SynthConfig;
use dp_testcases::all_designs;

fn main() {
    let lib = Library::synthetic_025um();
    let config = SynthConfig::default();
    // Target delay halfway between the two flows' post-synthesis delays
    // (the paper fixes absolute per-design targets on its own library).
    let rows: Vec<_> = all_designs().iter().map(|t| table2(t, &config, &lib, 0.5)).collect();
    print!("{}", render_table2(&rows));
}
