//! Regenerates the paper's Table 1: post-synthesis delay and area for the
//! five designs under the three merging flows.

use dp_bench::{render_table1, table1};
use dp_netlist::Library;
use dp_synth::SynthConfig;
use dp_testcases::all_designs;

fn main() {
    let lib = Library::synthetic_025um();
    let config = SynthConfig::default();
    let rows: Vec<_> = all_designs().iter().map(|t| table1(t, &config, &lib)).collect();
    print!("{}", render_table1(&rows));
    println!();
    println!(
        "library: {}  adder: {:?}  reduction: {:?}",
        lib.name(),
        config.adder,
        config.reduction
    );
    println!("(every netlist verified against the DFG evaluator before measurement)");
}
