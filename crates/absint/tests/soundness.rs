//! Differential soundness of the abstract domains against the bit-accurate
//! evaluator.
//!
//! Three layers of evidence, mirroring how the repository validates RP/IC:
//!
//! 1. **Exhaustive bit-blasting at small widths**: for random narrow designs
//!    every input assignment is enumerated; every concrete signal must lie
//!    in the forward abstraction, and flipping *all* undemanded bits of any
//!    node's result must leave every primary output unchanged
//!    (`Dfg::evaluate_patched` is the cut-point oracle).
//! 2. **Seeded random evaluation at large widths**: the same two properties
//!    on wide designs where enumeration is impossible.
//! 3. **Cross-proof**: on every random design and every builtin testcase,
//!    the checker's two proof obligations (demand ⊆ RP window, IC bound
//!    entailed by forward facts) discharge with zero violations.

use dp_absint::{analyze, DemandAnalysis, ForwardAnalysis};
use dp_bitvec::BitVec;
use dp_dfg::gen::{random_dfg, random_inputs, GenConfig};
use dp_dfg::Dfg;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Total primary-input bits of a design.
fn input_bits(g: &Dfg) -> usize {
    g.inputs().iter().map(|&n| g.node(n).width()).sum()
}

/// All input assignments for designs with few total input bits.
fn enumerate_inputs(g: &Dfg) -> Vec<Vec<BitVec>> {
    let total = input_bits(g);
    assert!(total <= 12, "enumeration only for tiny designs");
    (0..(1u64 << total))
        .map(|mut raw| {
            g.inputs()
                .iter()
                .map(|&n| {
                    let w = g.node(n).width();
                    let v = BitVec::from_u64_wrapping(w, raw);
                    raw >>= w;
                    v
                })
                .collect()
        })
        .collect()
}

/// Checks forward containment for one vector and returns the evaluation.
fn assert_forward_contains(
    g: &Dfg,
    fwd: &ForwardAnalysis,
    inputs: &[BitVec],
) -> dp_dfg::Evaluation {
    let eval = g.evaluate_full(inputs).expect("design evaluates");
    for n in g.node_ids() {
        assert!(
            fwd.output(n).contains(eval.result(n)),
            "forward abstraction violated at n{}: {:?} not in {:?}",
            n.index(),
            eval.result(n),
            fwd.output(n)
        );
    }
    for e in g.edge_ids() {
        let edge = g.edge(e);
        let sig = eval.result(edge.src()).resize(edge.signedness(), edge.width());
        assert!(
            fwd.edge_signal(e).contains(&sig),
            "forward abstraction violated at e{}: {sig:?} not in {:?}",
            e.index(),
            fwd.edge_signal(e)
        );
    }
    eval
}

/// Flips every undemanded bit of `node`'s result at once and checks that
/// no primary output moves — the strongest per-node liveness claim.
fn assert_demand_sound_at(
    g: &Dfg,
    bwd: &DemandAnalysis,
    inputs: &[BitVec],
    eval: &dp_dfg::Evaluation,
    node: dp_dfg::NodeId,
) {
    let w = g.node(node).width();
    let mask = bwd.output(node);
    let dead: Vec<usize> = (0..w).filter(|&k| !mask.bit(k)).collect();
    if dead.is_empty() {
        return;
    }
    let mut patched = eval.result(node).clone();
    for &k in &dead {
        patched.set_bit(k, !patched.bit(k));
    }
    let flipped = g.evaluate_patched(inputs, node, &patched).expect("patched eval");
    for &o in g.outputs() {
        assert_eq!(
            flipped.result(o),
            eval.result(o),
            "flipping dead bits {dead:?} of n{} changed output n{}",
            node.index(),
            o.index()
        );
    }
}

fn tiny_config(num_inputs: usize, num_ops: usize) -> GenConfig {
    GenConfig { num_inputs, num_ops, input_width: (1, 3), max_width: 10, ..GenConfig::default() }
}

fn wide_config(num_inputs: usize, num_ops: usize) -> GenConfig {
    GenConfig { num_inputs, num_ops, input_width: (8, 24), max_width: 64, ..GenConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exhaustive differential check at widths <= 10.
    #[test]
    fn exhaustive_small_width_soundness(seed in any::<u64>(), num_ops in 2usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_dfg(&mut rng, &tiny_config(2, num_ops));
        prop_assume!(input_bits(&g) <= 8);
        let (fwd, bwd, report) = analyze(&g);
        prop_assert!(!report.has_violations(), "{:?}", report.findings);
        for inputs in enumerate_inputs(&g) {
            let eval = assert_forward_contains(&g, &fwd, &inputs);
            for n in g.node_ids() {
                assert_demand_sound_at(&g, &bwd, &inputs, &eval, n);
            }
        }
    }

    /// Seeded random evaluation on wide designs.
    #[test]
    fn random_wide_width_soundness(seed in any::<u64>(), num_ops in 4usize..12) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let g = random_dfg(&mut rng, &wide_config(3, num_ops));
        let (fwd, bwd, report) = analyze(&g);
        prop_assert!(!report.has_violations(), "{:?}", report.findings);
        for _ in 0..12 {
            let inputs = random_inputs(&g, &mut rng);
            let eval = assert_forward_contains(&g, &fwd, &inputs);
            for n in g.node_ids() {
                assert_demand_sound_at(&g, &bwd, &inputs, &eval, n);
            }
        }
    }

    /// Truncation-heavy graphs stress the resize transfer functions.
    #[test]
    fn truncation_heavy_soundness(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7A7A);
        let config = GenConfig {
            p_truncate: 0.9,
            p_signed: 0.7,
            ..wide_config(3, 8)
        };
        let g = random_dfg(&mut rng, &config);
        let (fwd, bwd, report) = analyze(&g);
        prop_assert!(!report.has_violations(), "{:?}", report.findings);
        for _ in 0..8 {
            let inputs = random_inputs(&g, &mut rng);
            let eval = assert_forward_contains(&g, &fwd, &inputs);
            for n in g.node_ids() {
                assert_demand_sound_at(&g, &bwd, &inputs, &eval, n);
            }
        }
    }
}

/// The two proof obligations discharge on every builtin design, before
/// and after the width-optimizing transform.
#[test]
fn builtin_designs_prove_clean() {
    let mut designs: Vec<(&'static str, Dfg)> = Vec::new();
    for t in dp_testcases::all_designs() {
        designs.push((t.name, t.dfg));
    }
    for t in dp_testcases::scaling_designs() {
        designs.push((t.name, t.dfg));
    }
    assert!(designs.len() >= 7, "expected the full builtin suite");
    for (name, g) in designs {
        let (_, _, report) = analyze(&g);
        assert!(!report.has_violations(), "{name}: {:?}", report.findings);

        let mut opt = g.clone();
        dp_analysis::optimize_widths(&mut opt);
        let (_, _, report) = analyze(&opt);
        assert!(!report.has_violations(), "{name} (optimized): {:?}", report.findings);
    }
}

/// Deterministic spot-check: a seeded run is byte-stable (same findings,
/// same counters) across repeated analyses.
#[test]
fn analysis_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(42);
    let g = random_dfg(&mut rng, &wide_config(3, 10));
    let (_, _, a) = analyze(&g);
    let (_, _, b) = analyze(&g);
    assert_eq!(a.counters, b.counters);
    let render = |r: &dp_absint::AbsintReport| {
        r.findings.iter().map(|f| format!("{:?} {}", f.kind, f.message)).collect::<Vec<_>>()
    };
    assert_eq!(render(&a), render(&b));
}

/// Demand masks refine the RP window: every undemanded-but-windowed bit a
/// random graph produces is a fact RP provably cannot express.
#[test]
fn demand_refines_rp() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut refined = 0usize;
    for _ in 0..10 {
        let num_ops = rng.gen_range(3..7);
        let g = random_dfg(&mut rng, &tiny_config(3, num_ops));
        let rp = dp_analysis::required_precision(&g);
        let bwd = DemandAnalysis::compute(&g);
        for n in g.node_ids() {
            let r = rp.output_port(n).min(g.node(n).width());
            refined += (0..r).filter(|&k| !bwd.output(n).bit(k)).count();
        }
    }
    // Not a theorem — just evidence the finer lattice actually pays off on
    // typical graphs (interior dead bits exist).
    assert!(refined > 0, "demand analysis never refined an RP window");
}
