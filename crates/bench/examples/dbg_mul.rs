use dp_bitvec::{BitVec, Signedness};
use dp_merge::{Addend, AddendKind, SignalRef};
use dp_synth::{synthesize_sum, AdderKind, ReductionKind, SynthConfig};

fn main() {
    // brute force small products through synthesize_sum directly
    for wa in 1..=4usize {
        for wb in 1..=4usize {
            for ta in [Signedness::Unsigned, Signedness::Signed] {
                for tb in [Signedness::Unsigned, Signedness::Signed] {
                    for wout in [wa + wb - 1, wa + wb, wa + wb + 3] {
                        for compress in [false, true] {
                            for neg in [false, true] {
                                // Build a fake graph so we have NodeIds: use a dfg with two inputs.
                                let mut g = dp_dfg::Dfg::new();
                                let a = g.input("a", wa);
                                let b = g.input("b", wb);
                                // dummy edge ids: create a mul so edges exist
                                let m = g.op(dp_dfg::OpKind::Mul, wout, &[(a, ta), (b, tb)]);
                                g.output("o", wout, m, Signedness::Unsigned);
                                let ea = g.in_edge_on_port(m, 0).unwrap();
                                let eb = g.in_edge_on_port(m, 1).unwrap();
                                let sum = dp_merge::SumOfAddends {
                                    addends: vec![Addend {
                                        negated: neg,
                                        shift: 0,
                                        kind: AddendKind::Product(
                                            SignalRef {
                                                source: a,
                                                edge: ea,
                                                bits: wa,
                                                signedness: ta,
                                            },
                                            SignalRef {
                                                source: b,
                                                edge: eb,
                                                bits: wb,
                                                signedness: tb,
                                            },
                                        ),
                                    }],
                                    output: m,
                                    width: wout,
                                };
                                for red in [ReductionKind::Wallace, ReductionKind::Dadda] {
                                    let mut nl = dp_netlist::Netlist::new();
                                    let mut signals = dp_synth::SignalTable::default();
                                    signals.insert(a, nl.input("a", wa));
                                    signals.insert(b, nl.input("b", wb));
                                    let cfg = SynthConfig {
                                        adder: AdderKind::Ripple,
                                        reduction: red,
                                        sign_ext_compression: compress,
                                    };
                                    let out = synthesize_sum(&mut nl, &sum, &signals, &cfg);
                                    nl.output("o", out);
                                    for xa in 0..(1u64 << wa) {
                                        for xb in 0..(1u64 << wb) {
                                            let va = BitVec::from_u64(wa, xa);
                                            let vb = BitVec::from_u64(wb, xb);
                                            let ia = if ta == Signedness::Signed {
                                                va.to_i64().unwrap()
                                            } else {
                                                xa as i64
                                            };
                                            let ib = if tb == Signedness::Signed {
                                                vb.to_i64().unwrap()
                                            } else {
                                                xb as i64
                                            };
                                            let mut want = (ia as i128) * (ib as i128);
                                            if neg {
                                                want = -want;
                                            }
                                            let wantv = BitVec::from_i64_wrapping(64, want as i64)
                                                .trunc(wout.min(64));
                                            let got =
                                                nl.simulate(&[va.clone(), vb.clone()]).unwrap();
                                            if got[0] != wantv {
                                                println!("FAIL wa={wa} ta={ta:?} wb={wb} tb={tb:?} wout={wout} neg={neg} compress={compress} red={red:?} a={xa} b={xb}: got {} want {}", got[0], wantv);
                                                return;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    println!("all product combos ok");
}
