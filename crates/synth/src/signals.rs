//! Dense node-indexed storage for synthesized signal bits.

use dp_dfg::NodeId;
use dp_netlist::NetId;

/// Maps every synthesized DFG node to its bit nets (least significant
/// first), stored densely by node index.
///
/// Synthesis resolves a source node's bits once per addend that reads it,
/// on graphs with millions of nodes — a hash map there spends more time
/// hashing than wiring. Node ids are dense arena indices, so the table is
/// a plain vector; an empty slot doubles as "not synthesized yet", which
/// is unambiguous because every real signal has at least one bit.
///
/// ```
/// use dp_synth::SignalTable;
/// use dp_dfg::Dfg;
/// use dp_netlist::Netlist;
///
/// let mut g = Dfg::new();
/// let a = g.input("a", 4);
/// let mut nl = Netlist::new();
/// let mut signals = SignalTable::with_nodes(g.num_nodes());
/// signals.insert(a, nl.input("a", 4));
/// assert_eq!(signals.get(a).map(<[_]>::len), Some(4));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SignalTable {
    bits: Vec<Vec<NetId>>,
}

impl SignalTable {
    /// An empty table pre-sized for a graph with `num_nodes` nodes.
    pub fn with_nodes(num_nodes: usize) -> Self {
        SignalTable { bits: vec![Vec::new(); num_nodes] }
    }

    /// Records the synthesized bits of `n`, growing the table if `n` lies
    /// beyond the pre-sized range.
    pub fn insert(&mut self, n: NodeId, bits: Vec<NetId>) {
        if n.index() >= self.bits.len() {
            self.bits.resize(n.index() + 1, Vec::new());
        }
        self.bits[n.index()] = bits;
    }

    /// The bits of `n`, or `None` if it has not been synthesized.
    pub fn get(&self, n: NodeId) -> Option<&[NetId]> {
        match self.bits.get(n.index()) {
            Some(b) if !b.is_empty() => Some(b),
            _ => None,
        }
    }
}
