//! The reduced product of [`KnownBits`] and [`Interval`].
//!
//! An [`AbsVal`] is the working abstract value of the forward analysis:
//! both component domains describe the same `w`-bit word, and after every
//! transfer [`AbsVal::reduce`] pushes information across the product —
//! known leading bits tighten the interval, a one-signed interval pins the
//! leading bits — so either component alone suffices for the entailment
//! checks the cross-checker runs.

use dp_analysis::Ic;
use dp_bitvec::{BitVec, Signedness};

use crate::{Interval, KnownBits};

/// Abstract value for one `w`-bit signal: per-bit knowledge plus signed
/// bounds (bounds absent above [`Interval::MAX_WIDTH`] bits).
#[derive(Debug, Clone, PartialEq)]
pub struct AbsVal {
    /// Per-bit 0/1/⊤ knowledge.
    pub kb: KnownBits,
    /// Bounds on the signed interpretation, when tracked at this width.
    pub iv: Option<Interval>,
}

impl AbsVal {
    /// The top element at `width`: nothing known beyond the width itself.
    pub fn top(width: usize) -> AbsVal {
        AbsVal { kb: KnownBits::top(width), iv: Interval::full(width) }
    }

    /// The singleton element for a constant word.
    pub fn constant(value: &BitVec) -> AbsVal {
        AbsVal { kb: KnownBits::constant(value), iv: Interval::constant(value) }
    }

    /// The signal width this value describes.
    pub fn width(&self) -> usize {
        self.kb.width()
    }

    /// Whether the concrete word `value` is in the concretization.
    pub fn contains(&self, value: &BitVec) -> bool {
        if !self.kb.contains(value) {
            return false;
        }
        match &self.iv {
            Some(iv) => iv.contains(value),
            None => true,
        }
    }

    /// If the value is a single word, that word.
    pub fn as_constant(&self) -> Option<BitVec> {
        self.kb.as_constant()
    }

    /// Least upper bound (same width).
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        let iv = match (&self.iv, &other.iv) {
            (Some(a), Some(b)) => Some(a.join(b)),
            _ => None,
        };
        AbsVal { kb: self.kb.join(&other.kb), iv }.reduce()
    }

    /// Reduces the product: intersects the interval with the bounds the
    /// known bits imply, then pins leading bits the interval determines.
    pub fn reduce(self) -> AbsVal {
        let w = self.width();
        let AbsVal { kb, iv } = self;
        let Some(iv) = iv else {
            return AbsVal { kb, iv: None };
        };
        // Known bits → interval: the extreme members of γ(kb).
        let (kb_lo, kb_hi) = kb_signed_bounds(&kb);
        let clamped = iv
            .intersect(&Interval { lo: kb_lo, hi: kb_hi })
            // An empty intersection would mean γ = ∅; the transfers never
            // produce one from sound inputs, but degrade gracefully.
            .unwrap_or(Interval { lo: kb_lo, hi: kb_hi });
        // Interval → known bits: a one-signed interval pins the bits above
        // its magnitude (leading zeros for non-negative, leading ones for
        // negative).
        let mut zeros = BitVec::zero(w);
        let mut ones = BitVec::zero(w);
        if clamped.lo >= 0 {
            let bits = unsigned_bit_len(clamped.hi);
            for k in bits..w {
                zeros.set_bit(k, true);
            }
        } else if clamped.hi < 0 {
            let bits = signed_bit_len(clamped.lo);
            for k in bits.saturating_sub(1)..w {
                ones.set_bit(k, true);
            }
        }
        let kb =
            if zeros.is_zero() && ones.is_zero() { kb } else { refine_masks(kb, &zeros, &ones) };
        AbsVal { kb, iv: Some(clamped) }
    }

    /// Mirrors [`BitVec::resize`]: adapt to `new_width` under discipline
    /// `t` (truncate when narrower, extend when wider).
    pub fn resize(&self, t: Signedness, new_width: usize) -> AbsVal {
        let w = self.width();
        let kb = self.kb.resize(t, new_width);
        let iv = if new_width == w {
            self.iv
        } else if new_width < w {
            // Truncation preserves the signed value only when it already
            // fits the narrower signed range; otherwise fall back to the
            // width range (reduce() recovers what the kept bits imply).
            match self.iv {
                Some(iv) if iv.fits_signed(new_width) => Some(iv),
                _ => Interval::full(new_width),
            }
        } else {
            match (t, self.iv) {
                (Signedness::Signed, iv) => iv.or_else(|| Interval::full(new_width)),
                (Signedness::Unsigned, Some(iv)) => {
                    iv.to_unsigned(w).or_else(|| Interval::full(new_width))
                }
                (Signedness::Unsigned, None) => Interval::full(new_width),
            }
        };
        AbsVal { kb, iv }.reduce()
    }

    /// Transfer for a wrapping binary/unary operator at width `w`; returns
    /// the result value and whether the exact result provably never wraps.
    fn wrapping(kb: KnownBits, exact: Option<Interval>, w: usize) -> (AbsVal, bool) {
        match exact {
            Some(iv) if iv.fits_signed(w) => (AbsVal { kb, iv: Some(iv) }.reduce(), true),
            _ => (AbsVal { kb, iv: Interval::full(w) }.reduce(), false),
        }
    }

    /// Transfer for `wrapping_add` (both operands at this value's width).
    pub fn add(&self, rhs: &AbsVal) -> (AbsVal, bool) {
        let exact = zip_iv(self, rhs, |a, b| Some(a.add(&b)));
        AbsVal::wrapping(self.kb.add(&rhs.kb), exact, self.width())
    }

    /// Transfer for `wrapping_sub`.
    pub fn sub(&self, rhs: &AbsVal) -> (AbsVal, bool) {
        let exact = zip_iv(self, rhs, |a, b| Some(a.sub(&b)));
        AbsVal::wrapping(self.kb.sub(&rhs.kb), exact, self.width())
    }

    /// Transfer for `wrapping_neg`.
    pub fn neg(&self) -> (AbsVal, bool) {
        let exact = self.iv.map(|iv| iv.neg());
        AbsVal::wrapping(self.kb.neg(), exact, self.width())
    }

    /// Transfer for `wrapping_mul`.
    pub fn mul(&self, rhs: &AbsVal) -> (AbsVal, bool) {
        let exact = zip_iv(self, rhs, |a, b| a.mul(&b));
        AbsVal::wrapping(self.kb.mul(&rhs.kb), exact, self.width())
    }

    /// Transfer for `shl` by `amount`.
    pub fn shl(&self, amount: usize) -> (AbsVal, bool) {
        let exact = self.iv.and_then(|iv| iv.shl(amount));
        AbsVal::wrapping(self.kb.shl(amount), exact, self.width())
    }

    /// Whether this value **entails** the information-content bound
    /// `claim` at this width: every member word is a `claim.t`-extension
    /// of its `claim.i` low bits.
    pub fn entails(&self, claim: Ic) -> bool {
        let w = self.width();
        if claim.is_trivial_at(w) {
            return true;
        }
        match claim.t {
            Signedness::Unsigned => {
                // All bits >= i must be zero.
                let kb_ok = (claim.i..w).all(|k| self.kb.bit(k) == Some(false));
                let iv_ok = match &self.iv {
                    Some(iv) => claim.i < 127 && iv.lo >= 0 && iv.hi < (1i128 << claim.i),
                    None => false,
                };
                kb_ok || iv_ok
            }
            Signedness::Signed => {
                // All bits >= i-1 must equal bit i-1.
                let kb_ok = claim.i >= 1
                    && match self.kb.bit(claim.i - 1) {
                        Some(b) => (claim.i - 1..w).all(|k| self.kb.bit(k) == Some(b)),
                        None => false,
                    };
                let iv_ok = match &self.iv {
                    Some(iv) => {
                        claim.i >= 1
                            && claim.i < 127
                            && iv.lo >= -(1i128 << (claim.i - 1))
                            && iv.hi < (1i128 << (claim.i - 1))
                    }
                    None => false,
                };
                kb_ok || iv_ok
            }
        }
    }
}

/// Signed bounds implied by the known bits alone: unknown bits minimize /
/// maximize with the sign bit handled in the signed order.
fn kb_signed_bounds(kb: &KnownBits) -> (i128, i128) {
    let w = kb.width();
    if w > Interval::MAX_WIDTH {
        // Caller only reduces when an interval exists, which implies the
        // width is tracked; degrade to the widest representable range.
        return (i128::MIN / 2, i128::MAX / 2);
    }
    let mut min_word = kb.min_word();
    let mut max_word = kb.max_word();
    if kb.bit(w - 1).is_none() {
        // Sign unknown: minimum takes the sign bit, maximum clears it.
        min_word.set_bit(w - 1, true);
        max_word.set_bit(w - 1, false);
    }
    let lo = min_word.to_i128().unwrap_or(i128::MIN / 2);
    let hi = max_word.to_i128().unwrap_or(i128::MAX / 2);
    (lo, hi)
}

fn unsigned_bit_len(v: i128) -> usize {
    debug_assert!(v >= 0);
    (128 - v.leading_zeros()) as usize
}

fn signed_bit_len(v: i128) -> usize {
    debug_assert!(v < 0);
    (129 - (!v).leading_zeros()) as usize
}

fn refine_masks(kb: KnownBits, zeros: &BitVec, ones: &BitVec) -> KnownBits {
    let w = kb.width();
    let mut z = BitVec::zero(w);
    let mut o = BitVec::zero(w);
    for k in 0..w {
        match kb.bit(k) {
            Some(false) => z.set_bit(k, true),
            Some(true) => o.set_bit(k, true),
            None => {
                if zeros.bit(k) {
                    z.set_bit(k, true);
                } else if ones.bit(k) {
                    o.set_bit(k, true);
                }
            }
        }
    }
    KnownBits::from_masks(z, o)
}

fn zip_iv(
    a: &AbsVal,
    b: &AbsVal,
    f: impl Fn(Interval, Interval) -> Option<Interval>,
) -> Option<Interval> {
    match (a.iv, b.iv) {
        (Some(x), Some(y)) => f(x, y),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Signedness::{Signed, Unsigned};

    #[test]
    fn reduction_pins_leading_bits() {
        let v = AbsVal { kb: KnownBits::top(8), iv: Some(Interval { lo: 0, hi: 5 }) }.reduce();
        assert_eq!(v.kb.bit(7), Some(false));
        assert_eq!(v.kb.bit(3), Some(false));
        assert_eq!(v.kb.bit(2), None);
        let n = AbsVal { kb: KnownBits::top(8), iv: Some(Interval { lo: -4, hi: -1 }) }.reduce();
        assert_eq!(n.kb.bit(7), Some(true));
        assert_eq!(n.kb.bit(2), Some(true));
        assert_eq!(n.kb.bit(1), None);
    }

    #[test]
    fn reduction_clamps_interval_from_bits() {
        let c = AbsVal::constant(&BitVec::from_u64(6, 9));
        assert_eq!(c.iv, Some(Interval { lo: 9, hi: 9 }));
        let k = KnownBits::constant(&BitVec::from_u64(6, 9));
        let v = AbsVal { kb: k, iv: Some(Interval::full(6).unwrap()) }.reduce();
        assert_eq!(v.iv, Some(Interval { lo: 9, hi: 9 }));
    }

    #[test]
    fn resize_matches_bitvec_resize_exhaustively() {
        for w in 1..=6usize {
            for new_w in 1..=8usize {
                for t in [Unsigned, Signed] {
                    for raw in 0..(1u64 << w) {
                        let word = BitVec::from_u64(w, raw);
                        let av = AbsVal::constant(&word).resize(t, new_w);
                        let concrete = word.resize(t, new_w);
                        assert!(
                            av.contains(&concrete),
                            "w={w} new_w={new_w} t={t} raw={raw:b}: {av:?} vs {concrete:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn add_reports_no_wrap_only_when_sound() {
        let a = AbsVal { kb: KnownBits::top(4), iv: Some(Interval { lo: 0, hi: 3 }) }.reduce();
        let (sum, no_wrap) = a.add(&a);
        assert!(no_wrap);
        assert_eq!(sum.iv, Some(Interval { lo: 0, hi: 6 }));
        let t = AbsVal::top(4);
        let (_, wrap_possible) = t.add(&t);
        assert!(!wrap_possible);
    }

    #[test]
    fn entailment_matches_holds_for_exhaustively() {
        // For widths 1..=6: a value entails a claim iff every member
        // satisfies Ic::holds_for. Probe with singleton and small ranges.
        for w in 1..=6usize {
            for raw in 0..(1u64 << w) {
                let word = BitVec::from_u64(w, raw);
                let v = AbsVal::constant(&word);
                for i in 1..=w {
                    for t in [Unsigned, Signed] {
                        let claim = Ic::new(i, t);
                        assert_eq!(
                            v.entails(claim),
                            claim.holds_for(&word),
                            "w={w} raw={raw:b} claim={claim}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn range_entailment() {
        let v = AbsVal { kb: KnownBits::top(8), iv: Some(Interval { lo: -4, hi: 3 }) }.reduce();
        assert!(v.entails(Ic::new(3, Signed)));
        assert!(!v.entails(Ic::new(3, Unsigned)));
        assert!(!v.entails(Ic::new(2, Signed)));
        let u = AbsVal { kb: KnownBits::top(8), iv: Some(Interval { lo: 0, hi: 7 }) }.reduce();
        assert!(u.entails(Ic::new(3, Unsigned)));
        assert!(u.entails(Ic::new(4, Signed)));
    }
}
