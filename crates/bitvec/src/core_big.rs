//! Fallback kernel: widths above 128 bits as heap-allocated little-endian
//! `u64` limbs.
//!
//! This is the only tier that touches the allocator. Callers maintain the
//! canonical-form invariant (bits at positions `>= width` are zero, limb
//! count is exactly `limbs_for(width)`); every kernel re-establishes it on
//! its result. Out-of-range limb reads are defined as zero so every
//! function stays total even on ragged operand lengths.

pub(crate) const LIMB_BITS: usize = 64;

/// Number of limbs a `width`-bit vector occupies.
#[inline]
pub(crate) fn limbs_for(width: u32) -> usize {
    (width as usize).div_ceil(LIMB_BITS)
}

/// Limb `k` of `a`, reading zero past the end.
#[inline]
pub(crate) fn limb(a: &[u64], k: usize) -> u64 {
    a.get(k).copied().unwrap_or(0)
}

/// Clears any bits at positions `>= width`, restoring canonical form.
pub(crate) fn mask_top(width: u32, limbs: &mut [u64]) {
    let top_bits = width as usize % LIMB_BITS;
    if top_bits != 0 {
        if let Some(last) = limbs.last_mut() {
            *last &= (1u64 << top_bits) - 1;
        }
    }
}

/// An all-zero limb vector for `width`.
pub(crate) fn zero(width: u32) -> Box<[u64]> {
    vec![0u64; limbs_for(width)].into_boxed_slice()
}

/// What limb `k` of a canonical `width`-bit vector filled with `fill`
/// bits (zero or all-ones) looks like after top masking.
pub(crate) fn fill_limb(fill: u64, width: u32, k: usize) -> u64 {
    if fill == 0 {
        return 0;
    }
    let lo = k * LIMB_BITS;
    let width = width as usize;
    if lo >= width {
        0
    } else if width - lo >= LIMB_BITS {
        u64::MAX
    } else {
        (1u64 << (width - lo)) - 1
    }
}

/// Modular addition at `width`.
pub(crate) fn add(width: u32, a: &[u64], b: &[u64]) -> Box<[u64]> {
    let mut out = zero(width);
    let mut carry = 0u64;
    for (k, o) in out.iter_mut().enumerate() {
        let (s1, c1) = limb(a, k).overflowing_add(limb(b, k));
        let (s2, c2) = s1.overflowing_add(carry);
        *o = s2;
        carry = (c1 as u64) + (c2 as u64);
    }
    mask_top(width, &mut out);
    out
}

/// Modular subtraction at `width`.
pub(crate) fn sub(width: u32, a: &[u64], b: &[u64]) -> Box<[u64]> {
    let mut out = zero(width);
    let mut borrow = 0u64;
    for (k, o) in out.iter_mut().enumerate() {
        let (d1, b1) = limb(a, k).overflowing_sub(limb(b, k));
        let (d2, b2) = d1.overflowing_sub(borrow);
        *o = d2;
        borrow = (b1 as u64) | (b2 as u64);
    }
    mask_top(width, &mut out);
    out
}

/// Bitwise NOT within `width`.
pub(crate) fn not(width: u32, a: &[u64]) -> Box<[u64]> {
    let mut out: Box<[u64]> = a.iter().map(|&l| !l).collect();
    mask_top(width, &mut out);
    out
}

/// Modular two's-complement negation at `width`.
pub(crate) fn neg(width: u32, a: &[u64]) -> Box<[u64]> {
    let mut out = not(width, a);
    let mut carry = 1u64;
    for o in out.iter_mut() {
        if carry == 0 {
            break;
        }
        let (s, c) = o.overflowing_add(carry);
        *o = s;
        carry = c as u64;
    }
    mask_top(width, &mut out);
    out
}

/// Schoolbook multiplication keeping only the low `width` bits. With
/// `width == a_width + b_width` this is the exact (widening) product.
pub(crate) fn mul_mod(width: u32, a: &[u64], b: &[u64]) -> Box<[u64]> {
    let out_limbs = limbs_for(width);
    let mut acc = vec![0u64; out_limbs + 1];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &y) in b.iter().enumerate() {
            if i + j >= acc.len() {
                break;
            }
            let t = (x as u128) * (y as u128) + (acc[i + j] as u128) + carry;
            acc[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 && k < acc.len() {
            let t = (acc[k] as u128) + carry;
            acc[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    acc.truncate(out_limbs);
    let mut out = acc.into_boxed_slice();
    mask_top(width, &mut out);
    out
}

/// Logical left shift within `width` (top bits fall off, zeros enter).
pub(crate) fn shl(width: u32, a: &[u64], amount: usize) -> Box<[u64]> {
    if amount >= width as usize {
        return zero(width);
    }
    let (limb_shift, bit_shift) = (amount / LIMB_BITS, amount % LIMB_BITS);
    let mut out = zero(width);
    for k in (limb_shift..out.len()).rev() {
        let hi = limb(a, k - limb_shift) << bit_shift;
        let lo = if bit_shift > 0 && k > limb_shift {
            limb(a, k - limb_shift - 1) >> (LIMB_BITS - bit_shift)
        } else {
            0
        };
        out[k] = hi | lo;
    }
    mask_top(width, &mut out);
    out
}

/// Logical right shift (zeros enter at the top).
pub(crate) fn lshr(width: u32, a: &[u64], amount: usize) -> Box<[u64]> {
    if amount >= width as usize {
        return zero(width);
    }
    let (limb_shift, bit_shift) = (amount / LIMB_BITS, amount % LIMB_BITS);
    let mut out = zero(width);
    for k in 0..out.len() {
        let lo = limb(a, k + limb_shift) >> bit_shift;
        let hi =
            if bit_shift > 0 { limb(a, k + limb_shift + 1) << (LIMB_BITS - bit_shift) } else { 0 };
        out[k] = lo | hi;
    }
    mask_top(width, &mut out);
    out
}

/// Arithmetic right shift (copies of the sign bit enter at the top).
pub(crate) fn ashr(width: u32, a: &[u64], amount: usize) -> Box<[u64]> {
    let sign = msb(width, a);
    if amount >= width as usize {
        return if sign { ones(width) } else { zero(width) };
    }
    let mut out = lshr(width, a, amount);
    if sign {
        for bit in (width as usize - amount)..width as usize {
            out[bit / LIMB_BITS] |= 1u64 << (bit % LIMB_BITS);
        }
    }
    out
}

/// In-place logical left shift within `width`. Processing limbs high to
/// low only ever reads positions at or below the one being written, so the
/// buffer shifts over itself without a scratch copy.
pub(crate) fn shl_assign(width: u32, a: &mut [u64], amount: usize) {
    if amount >= width as usize {
        a.fill(0);
        return;
    }
    let (limb_shift, bit_shift) = (amount / LIMB_BITS, amount % LIMB_BITS);
    for k in (0..a.len()).rev() {
        a[k] = if k < limb_shift {
            0
        } else {
            let hi = a[k - limb_shift] << bit_shift;
            let lo = if bit_shift > 0 && k > limb_shift {
                a[k - limb_shift - 1] >> (LIMB_BITS - bit_shift)
            } else {
                0
            };
            hi | lo
        };
    }
    mask_top(width, a);
}

/// In-place logical right shift. Processing limbs low to high only ever
/// reads positions at or above the one being written.
pub(crate) fn lshr_assign(width: u32, a: &mut [u64], amount: usize) {
    if amount >= width as usize {
        a.fill(0);
        return;
    }
    let (limb_shift, bit_shift) = (amount / LIMB_BITS, amount % LIMB_BITS);
    for k in 0..a.len() {
        let lo = limb(a, k + limb_shift) >> bit_shift;
        let hi =
            if bit_shift > 0 { limb(a, k + limb_shift + 1) << (LIMB_BITS - bit_shift) } else { 0 };
        a[k] = lo | hi;
    }
    mask_top(width, a);
}

/// In-place arithmetic right shift (copies of the sign bit enter at the
/// top).
pub(crate) fn ashr_assign(width: u32, a: &mut [u64], amount: usize) {
    let sign = msb(width, a);
    if amount >= width as usize {
        a.fill(if sign { u64::MAX } else { 0 });
        mask_top(width, a);
        return;
    }
    lshr_assign(width, a, amount);
    if sign {
        for bit in (width as usize - amount)..width as usize {
            a[bit / LIMB_BITS] |= 1u64 << (bit % LIMB_BITS);
        }
    }
}

/// In-place low-bit mask: clears every bit at position `keep` or above,
/// leaving the limb count (and thus the width) unchanged.
pub(crate) fn mask_assign(keep: u32, a: &mut [u64]) {
    let full = keep as usize / LIMB_BITS;
    let rem = keep as usize % LIMB_BITS;
    for l in a.iter_mut().skip(full + usize::from(rem > 0)) {
        *l = 0;
    }
    if rem > 0 {
        a[full] &= (1u64 << rem) - 1;
    }
}

/// An all-ones canonical limb vector for `width`.
pub(crate) fn ones(width: u32) -> Box<[u64]> {
    let mut out: Box<[u64]> = vec![u64::MAX; limbs_for(width)].into_boxed_slice();
    mask_top(width, &mut out);
    out
}

/// The most significant bit (position `width - 1`).
#[inline]
pub(crate) fn msb(width: u32, a: &[u64]) -> bool {
    let i = width as usize - 1;
    (limb(a, i / LIMB_BITS) >> (i % LIMB_BITS)) & 1 == 1
}

/// Position of the highest set bit plus one; `0` for the zero value.
pub(crate) fn min_unsigned_width(a: &[u64]) -> usize {
    for (k, &l) in a.iter().enumerate().rev() {
        if l != 0 {
            return k * LIMB_BITS + (64 - l.leading_zeros()) as usize;
        }
    }
    0
}

/// Smallest `i >= 1` such that the value equals the sign extension of its
/// `i` least significant bits: one past the highest bit that differs from
/// the sign fill, plus one for the sign bit itself.
pub(crate) fn min_signed_width(width: u32, a: &[u64]) -> usize {
    let fill = if msb(width, a) { u64::MAX } else { 0 };
    for k in (0..limbs_for(width)).rev() {
        // Differing bits within the width window of limb k.
        let x = (limb(a, k) ^ fill) & fill_limb(u64::MAX, width, k);
        if x != 0 {
            return k * LIMB_BITS + (64 - x.leading_zeros()) as usize + 1;
        }
    }
    1
}

/// Unsigned comparison of two canonical limb vectors (any lengths).
pub(crate) fn cmp_unsigned(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
    let n = a.len().max(b.len());
    for k in (0..n).rev() {
        match limb(a, k).cmp(&limb(b, k)) {
            std::cmp::Ordering::Equal => continue,
            ord => return ord,
        }
    }
    std::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a: Box<[u64]> = vec![u64::MAX, u64::MAX, 1].into_boxed_slice();
        let b: Box<[u64]> = vec![1, 0, 0].into_boxed_slice();
        let s = add(130, &a, &b);
        assert_eq!(&s[..], &[0, 0, 2]);
        let d = sub(130, &s, &b);
        assert_eq!(&d[..], &a[..]);
    }

    #[test]
    fn shifts_word_and_bit_granularity() {
        let mut a = zero(200);
        a[0] = 0b1011;
        let l = shl(200, &a, 130);
        assert_eq!(limb(&l, 2), 0b1011 << 2);
        let r = lshr(200, &l, 130);
        assert_eq!(&r[..], &a[..]);
    }

    #[test]
    fn ashr_fills_sign() {
        let a = ones(130);
        let r = ashr(130, &a, 64);
        assert_eq!(&r[..], &ones(130)[..]);
        let z = zero(130);
        assert_eq!(&ashr(130, &z, 64)[..], &z[..]);
    }

    #[test]
    fn min_signed_width_scans_limbs() {
        assert_eq!(min_signed_width(130, &ones(130)), 1);
        assert_eq!(min_signed_width(130, &zero(130)), 1);
        let mut v = zero(130);
        v[0] = 0b0110;
        assert_eq!(min_signed_width(130, &v), 4);
        let mut w = ones(130);
        w[0] = u64::MAX << 3; // ...111000 => -8 needs 4 bits
        assert_eq!(min_signed_width(130, &w), 4);
    }
}
