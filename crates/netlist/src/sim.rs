//! Bit-accurate netlist simulation.

use std::error::Error;
use std::fmt;

use dp_bitvec::BitVec;

use crate::netlist::NetDriver;
use crate::Netlist;

/// Error from [`Netlist::simulate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Wrong number of input buses supplied.
    WrongInputCount {
        /// How many buses the netlist declares.
        expected: usize,
        /// How many values were supplied.
        found: usize,
    },
    /// A supplied input value has the wrong width.
    InputWidthMismatch {
        /// Index of the offending input bus.
        index: usize,
        /// Declared bus width.
        expected: usize,
        /// Width of the supplied value.
        found: usize,
    },
    /// The netlist failed its structural check.
    Invalid(crate::NetlistError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::WrongInputCount { expected, found } => {
                write!(f, "expected {expected} input bus(es), found {found}")
            }
            SimError::InputWidthMismatch { index, expected, found } => {
                write!(f, "input #{index} expects width {expected}, found {found}")
            }
            SimError::Invalid(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::NetlistError> for SimError {
    fn from(e: crate::NetlistError) -> Self {
        SimError::Invalid(e)
    }
}

impl Netlist {
    /// Simulates the netlist on the given input bus values (in declaration
    /// order, least significant bit first within each bus) and returns one
    /// [`BitVec`] per output bus.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on interface mismatch or structural defects.
    pub fn simulate(&self, inputs: &[BitVec]) -> Result<Vec<BitVec>, SimError> {
        self.check()?;
        if inputs.len() != self.inputs().len() {
            return Err(SimError::WrongInputCount {
                expected: self.inputs().len(),
                found: inputs.len(),
            });
        }
        let mut values = vec![false; self.num_nets()];
        for (index, ((_, bits), value)) in self.inputs().iter().zip(inputs).enumerate() {
            if value.width() != bits.len() {
                return Err(SimError::InputWidthMismatch {
                    index,
                    expected: bits.len(),
                    found: value.width(),
                });
            }
            for (k, &net) in bits.iter().enumerate() {
                values[net.index()] = value.bit(k);
            }
        }
        for (i, d) in self.drivers.iter().enumerate() {
            if let NetDriver::Const(v) = d {
                values[i] = *v;
            }
        }
        for g in self.topo_gates().expect("checked above") {
            let gate = &self.gates[g.index()];
            // Arity-1 cells ignore `b`; their second slot duplicates pin 0.
            let a = values[gate.ins[0].index()];
            let b = values[gate.ins[1].index()];
            values[gate.output.index()] = gate.kind.eval(a, b);
        }
        Ok(self
            .outputs()
            .iter()
            .map(|(_, bits)| BitVec::from_fn(bits.len(), |k| values[bits[k].index()]))
            .collect())
    }

    /// Simulates the netlist on many input assignments at once using the
    /// word-parallel encoding of `DESIGN.md` §13: each net carries one
    /// `u64` whose bit `l` is that net's value in lane `l`, so a single
    /// topological pass evaluates up to 64 vectors. More than 64 lanes are
    /// processed in chunks of 64.
    ///
    /// `lanes[l]` is one full input assignment exactly as
    /// [`Netlist::simulate`] takes it; the result holds the matching
    /// output values per lane, identical to calling `simulate` on each
    /// assignment separately.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on structural defects, or on the first lane
    /// (in order) whose assignment mismatches the interface.
    pub fn simulate_batch(&self, lanes: &[Vec<BitVec>]) -> Result<Vec<Vec<BitVec>>, SimError> {
        self.check()?;
        for lane in lanes {
            if lane.len() != self.inputs().len() {
                return Err(SimError::WrongInputCount {
                    expected: self.inputs().len(),
                    found: lane.len(),
                });
            }
            for (index, ((_, bits), value)) in self.inputs().iter().zip(lane).enumerate() {
                if value.width() != bits.len() {
                    return Err(SimError::InputWidthMismatch {
                        index,
                        expected: bits.len(),
                        found: value.width(),
                    });
                }
            }
        }
        let topo = self.topo_gates()?;
        let mut results = Vec::with_capacity(lanes.len());
        let mut words = vec![0u64; self.num_nets()];
        for chunk in lanes.chunks(64) {
            let lane_mask = if chunk.len() == 64 { u64::MAX } else { (1u64 << chunk.len()) - 1 };
            words.fill(0);
            for (i, d) in self.drivers.iter().enumerate() {
                if let NetDriver::Const(true) = d {
                    words[i] = lane_mask;
                }
            }
            for (l, lane) in chunk.iter().enumerate() {
                for ((_, bits), value) in self.inputs().iter().zip(lane) {
                    for (k, &net) in bits.iter().enumerate() {
                        if value.bit(k) {
                            words[net.index()] |= 1u64 << l;
                        }
                    }
                }
            }
            for g in &topo {
                let gate = &self.gates[g.index()];
                // Arity-1 cells ignore `b`; their second slot duplicates pin 0.
                let a = words[gate.ins[0].index()];
                let b = words[gate.ins[1].index()];
                words[gate.output.index()] = gate.kind.eval_word(a, b) & lane_mask;
            }
            for l in 0..chunk.len() {
                results.push(
                    self.outputs()
                        .iter()
                        .map(|(_, bits)| {
                            BitVec::from_fn(bits.len(), |k| (words[bits[k].index()] >> l) & 1 == 1)
                        })
                        .collect(),
                );
            }
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellKind;

    /// A 2-bit ripple adder built by hand.
    fn two_bit_adder() -> Netlist {
        let mut n = Netlist::new();
        let a = n.input("a", 2);
        let b = n.input("b", 2);
        // Bit 0: half adder.
        let s0 = n.gate(CellKind::Xor2, &[a[0], b[0]]);
        let c0 = n.gate(CellKind::And2, &[a[0], b[0]]);
        // Bit 1: full adder.
        let t = n.gate(CellKind::Xor2, &[a[1], b[1]]);
        let s1 = n.gate(CellKind::Xor2, &[t, c0]);
        let u = n.gate(CellKind::And2, &[a[1], b[1]]);
        let v = n.gate(CellKind::And2, &[t, c0]);
        let c1 = n.gate(CellKind::Or2, &[u, v]);
        n.output("s", vec![s0, s1, c1]);
        n
    }

    #[test]
    fn adder_is_exhaustively_correct() {
        let n = two_bit_adder();
        for a in 0..4u64 {
            for b in 0..4u64 {
                let out = n.simulate(&[BitVec::from_u64(2, a), BitVec::from_u64(2, b)]).unwrap();
                assert_eq!(out[0].to_u64(), Some(a + b), "{a}+{b}");
            }
        }
    }

    #[test]
    fn constants_simulate() {
        let mut n = Netlist::new();
        let a = n.input("a", 1)[0];
        let one = n.const1();
        let x = n.gate(CellKind::Xor2, &[a, one]); // !a
        n.output("o", vec![x]);
        let out = n.simulate(&[BitVec::from_u64(1, 0)]).unwrap();
        assert_eq!(out[0].to_u64(), Some(1));
    }

    #[test]
    fn interface_errors() {
        let n = two_bit_adder();
        assert!(matches!(n.simulate(&[]), Err(SimError::WrongInputCount { .. })));
        assert!(matches!(
            n.simulate(&[BitVec::zero(3), BitVec::zero(2)]),
            Err(SimError::InputWidthMismatch { index: 0, .. })
        ));
    }

    #[test]
    fn batch_matches_scalar_exhaustively() {
        let n = two_bit_adder();
        let lanes: Vec<Vec<BitVec>> = (0..4u64)
            .flat_map(|a| {
                (0..4u64).map(move |b| vec![BitVec::from_u64(2, a), BitVec::from_u64(2, b)])
            })
            .collect();
        let batch = n.simulate_batch(&lanes).unwrap();
        assert_eq!(batch.len(), lanes.len());
        for (lane, out) in lanes.iter().zip(&batch) {
            assert_eq!(out, &n.simulate(lane).unwrap());
        }
    }

    #[test]
    fn batch_chunks_past_64_lanes() {
        // 100 lanes force two word-parallel passes; constants must
        // broadcast correctly into both chunks.
        let mut n = Netlist::new();
        let a = n.input("a", 1)[0];
        let one = n.const1();
        let x = n.gate(CellKind::Xor2, &[a, one]); // !a
        n.output("o", vec![x]);
        let lanes: Vec<Vec<BitVec>> =
            (0..100u64).map(|i| vec![BitVec::from_u64(1, i % 2)]).collect();
        let batch = n.simulate_batch(&lanes).unwrap();
        for (i, out) in batch.iter().enumerate() {
            assert_eq!(out[0].to_u64(), Some(1 - (i as u64 % 2)), "lane {i}");
        }
    }

    #[test]
    fn batch_interface_errors() {
        let n = two_bit_adder();
        assert!(n.simulate_batch(&[]).unwrap().is_empty());
        assert!(matches!(n.simulate_batch(&[vec![]]), Err(SimError::WrongInputCount { .. })));
        assert!(matches!(
            n.simulate_batch(&[
                vec![BitVec::zero(2), BitVec::zero(2)],
                vec![BitVec::zero(2), BitVec::zero(3)]
            ]),
            Err(SimError::InputWidthMismatch { index: 1, .. })
        ));
    }
}
