//! # dp-trace — decision provenance for the datapath-merge pipeline
//!
//! dp-metrics (PR 2) records *how long* and *how much*; this crate records
//! *why*. Every width-shrinking, extension-inserting, break-classifying,
//! and cluster-forming decision in the pipeline emits a [`TraceEvent`]
//! carrying the paper rule that fired ([`Rule`], e.g. `RP-CLAMP` for
//! Theorem 4.2 or `IC-PRUNE` for Lemma 5.6), the node or edge it acted on
//! ([`Subject`]), the before/after widths, and a causal parent event.
//!
//! The log is **deterministic**: the pipeline visits nodes and edges in
//! index order, so two runs over the same design produce identical event
//! streams — which makes the log diffable and lets `dpmc bench` count
//! events as a QoR-adjacent regression signal. The same determinism is
//! what lets dp-obs re-emit the log verbatim as `trace` lines of the
//! `dpmc-events/1` streaming document (`dpmc … --events`): one decision
//! per line, byte-identical at every telemetry level and job count.
//!
//! Like the dp-metrics `Recorder`, a [`TraceLog`] built with
//! [`TraceLog::disabled`] is a free no-op sink, so the plain (non-`_with`)
//! pipeline entry points pay nothing.
//!
//! ```
//! use dp_trace::{Rule, Subject, TraceLog};
//!
//! let mut tr = TraceLog::new();
//! let prune = tr.emit(Rule::IcPrune, Subject::Node(7), 8, 5).unwrap();
//! let ext = tr.emit_caused(Rule::ExtInsert, Subject::Node(9), 8, 8, Some(prune)).unwrap();
//! assert_eq!(tr.ancestors(ext), vec![prune]);
//! assert_eq!(tr.event(prune).to_string(), "[#0] IC-PRUNE n7: 8 -> 5");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod event;
mod log;

pub use event::{EventId, Rule, Subject, TraceEvent};
pub use log::TraceLog;
