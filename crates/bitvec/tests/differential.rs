//! Differential tests: every tiered [`BitVec`] operation is replayed on
//! the retained reference implementation ([`RefBitVec`]) and the results
//! must be bit-identical.
//!
//! Width generation is biased toward the tier boundaries of `DESIGN.md`
//! §13 (63/64/65 and 127/128/129) and the limb boundaries, the places a
//! tiered representation can get promotion or masking wrong; signedness
//! edges (sign bit set, all-ones, signed minimum) fall out of uniform
//! random bits at those widths, and shift amounts straddle the width
//! itself.

use proptest::prelude::*;

use dp_bitvec::{BitVec, RefBitVec, Signedness, Tier};

/// Widths around every representation boundary: tier edges 64 and 128,
/// limb edge 192, plus interior and tiny widths.
const BOUNDARY_WIDTHS: &[usize] =
    &[1, 2, 31, 32, 33, 63, 64, 65, 66, 96, 127, 128, 129, 130, 191, 192, 193, 256];

/// A width drawn from the boundary set half the time and uniformly from
/// `1..200` otherwise.
fn width() -> impl Strategy<Value = usize> {
    (0usize..BOUNDARY_WIDTHS.len(), 1usize..200, any::<bool>()).prop_map(|(i, w, boundary)| {
        if boundary {
            BOUNDARY_WIDTHS[i]
        } else {
            w
        }
    })
}

/// Dense random bits for a given width, from four seed words.
fn bits_from(seed: &[u64], w: usize) -> BitVec {
    BitVec::from_fn(w, |i| (seed[i % 4] >> (i / 4 % 64)) & 1 == 1)
}

/// A `(tiered, reference)` pair holding identical bits.
fn pair() -> impl Strategy<Value = (BitVec, RefBitVec)> {
    (width(), proptest::collection::vec(any::<u64>(), 4)).prop_map(|(w, seed)| {
        let v = bits_from(&seed, w);
        let r = RefBitVec::from_bitvec(&v);
        (v, r)
    })
}

/// Two same-width pairs (for the equal-width binary operations).
#[allow(clippy::type_complexity)]
fn same_width_pairs() -> impl Strategy<Value = ((BitVec, RefBitVec), (BitVec, RefBitVec))> {
    (
        width(),
        proptest::collection::vec(any::<u64>(), 4),
        proptest::collection::vec(any::<u64>(), 4),
    )
        .prop_map(|(w, sa, sb)| {
            let a = bits_from(&sa, w);
            let b = bits_from(&sb, w);
            let ra = RefBitVec::from_bitvec(&a);
            let rb = RefBitVec::from_bitvec(&b);
            ((a, ra), (b, rb))
        })
}

proptest! {
    #[test]
    fn tier_is_a_pure_function_of_width((v, _) in pair()) {
        let expect = if v.width() <= 64 {
            Tier::Small
        } else if v.width() <= 128 {
            Tier::Mid
        } else {
            Tier::Big
        };
        prop_assert_eq!(v.tier(), expect);
    }

    #[test]
    fn constructors_agree(w in width(), raw in any::<u64>()) {
        prop_assert_eq!(
            RefBitVec::from_u64_wrapping(w, raw).to_bitvec(),
            BitVec::from_u64_wrapping(w, raw)
        );
        prop_assert_eq!(
            RefBitVec::from_i64_wrapping(w, raw as i64).to_bitvec(),
            BitVec::from_i64_wrapping(w, raw as i64)
        );
        prop_assert_eq!(RefBitVec::zero(w).to_bitvec(), BitVec::zero(w));
        prop_assert_eq!(RefBitVec::ones(w).to_bitvec(), BitVec::ones(w));
    }

    #[test]
    fn add_sub_mul_agree((( a, ra), (b, rb)) in same_width_pairs()) {
        prop_assert_eq!(ra.wrapping_add(&rb).to_bitvec(), a.wrapping_add(&b));
        prop_assert_eq!(ra.wrapping_sub(&rb).to_bitvec(), a.wrapping_sub(&b));
        prop_assert_eq!(ra.wrapping_mul(&rb).to_bitvec(), a.wrapping_mul(&b));
    }

    #[test]
    fn bitwise_agree(((a, ra), (b, rb)) in same_width_pairs()) {
        prop_assert_eq!(ra.and(&rb).to_bitvec(), a.and(&b));
        prop_assert_eq!(ra.or(&rb).to_bitvec(), a.or(&b));
        prop_assert_eq!(ra.xor(&rb).to_bitvec(), a.xor(&b));
        prop_assert_eq!(ra.not().to_bitvec(), a.not());
        prop_assert_eq!(ra.wrapping_neg().to_bitvec(), a.wrapping_neg());
    }

    #[test]
    fn shifts_agree_including_by_width((v, r) in pair(), base in 0usize..80, edge in 0usize..4) {
        // Half the amounts straddle the width itself: w-1, w, w+1, 2w.
        let w = v.width();
        let amount = match edge {
            0 => base,
            1 => w.saturating_sub(1),
            2 => w,
            _ => w + base,
        };
        prop_assert_eq!(r.shl(amount).to_bitvec(), v.shl(amount));
        prop_assert_eq!(r.lshr(amount).to_bitvec(), v.lshr(amount));
        prop_assert_eq!(r.ashr(amount).to_bitvec(), v.ashr(amount));
    }

    #[test]
    fn width_changes_agree((v, r) in pair(), other in width()) {
        let w = v.width();
        prop_assert_eq!(r.trunc(w.min(other)).to_bitvec(), v.trunc(w.min(other)));
        prop_assert_eq!(r.zext(w.max(other)).to_bitvec(), v.zext(w.max(other)));
        prop_assert_eq!(r.sext(w.max(other)).to_bitvec(), v.sext(w.max(other)));
        prop_assert_eq!(
            r.resize(Signedness::Signed, other).to_bitvec(),
            v.resize(Signedness::Signed, other)
        );
        prop_assert_eq!(
            r.resize(Signedness::Unsigned, other).to_bitvec(),
            v.resize(Signedness::Unsigned, other)
        );
    }

    #[test]
    fn widening_muls_agree((a, ra) in pair(), (b, rb) in pair()) {
        prop_assert_eq!(ra.widening_mul_unsigned(&rb).to_bitvec(), a.widening_mul_unsigned(&b));
        prop_assert_eq!(ra.widening_mul_signed(&rb).to_bitvec(), a.widening_mul_signed(&b));
    }

    #[test]
    fn comparisons_agree_across_widths((a, ra) in pair(), (b, rb) in pair()) {
        prop_assert_eq!(ra.cmp_unsigned(&rb), a.cmp_unsigned(&b));
        prop_assert_eq!(ra.cmp_signed(&rb), a.cmp_signed(&b));
    }

    #[test]
    fn conversions_agree((v, r) in pair()) {
        prop_assert_eq!(r.to_u64(), v.to_u64());
        prop_assert_eq!(r.to_u128(), v.to_u128());
        prop_assert_eq!(r.to_i64(), v.to_i64());
        prop_assert_eq!(r.to_i128(), v.to_i128());
        prop_assert_eq!(r.to_bits(), v.to_bits());
        prop_assert_eq!(r.msb(), v.msb());
        prop_assert_eq!(r.is_zero(), v.is_zero());
        prop_assert_eq!(r.is_all_ones(), v.is_all_ones());
        prop_assert_eq!(r.to_string(), v.to_string());
    }

    #[test]
    fn information_content_agrees((v, r) in pair(), i in 0usize..260) {
        prop_assert_eq!(r.min_unsigned_width(), v.min_unsigned_width());
        prop_assert_eq!(r.min_signed_width(), v.min_signed_width());
        prop_assert_eq!(
            r.is_extension_of(i, Signedness::Unsigned),
            v.is_extension_of(i, Signedness::Unsigned)
        );
        prop_assert_eq!(
            r.is_extension_of(i, Signedness::Signed),
            v.is_extension_of(i, Signedness::Signed)
        );
    }

    #[test]
    fn set_bit_agrees((v, r) in pair(), pos in any::<u64>(), bit in any::<bool>()) {
        let i = pos as usize % v.width();
        let mut v2 = v;
        let mut r2 = r;
        v2.set_bit(i, bit);
        r2.set_bit(i, bit);
        prop_assert_eq!(r2.to_bitvec(), v2);
    }
}

/// Exhaustive sweeps at the exact tier boundaries: every signedness edge
/// value at widths 63/64/65 and 127/128/129 through every same-width op.
#[test]
fn tier_boundary_edge_values() {
    for &w in &[63usize, 64, 65, 127, 128, 129] {
        let edges: Vec<BitVec> = vec![
            BitVec::zero(w),
            BitVec::ones(w),
            BitVec::from_u64(w, 1),
            BitVec::from_fn(w, |i| i == w - 1), // signed minimum
            BitVec::from_fn(w, |i| i != w - 1), // signed maximum
            BitVec::from_fn(w, |i| i % 2 == 0), // alternating
            BitVec::from_fn(w, |i| i >= w / 2), // high half
        ];
        for a in &edges {
            let ra = RefBitVec::from_bitvec(a);
            assert_eq!(ra.wrapping_neg().to_bitvec(), a.wrapping_neg(), "neg w={w} a={a}");
            assert_eq!(ra.not().to_bitvec(), a.not(), "not w={w} a={a}");
            assert_eq!(ra.min_signed_width(), a.min_signed_width(), "msw w={w} a={a}");
            assert_eq!(ra.min_unsigned_width(), a.min_unsigned_width(), "muw w={w} a={a}");
            for amt in [0, 1, w - 1, w, w + 1] {
                assert_eq!(ra.shl(amt).to_bitvec(), a.shl(amt), "shl w={w} amt={amt} a={a}");
                assert_eq!(ra.lshr(amt).to_bitvec(), a.lshr(amt), "lshr w={w} amt={amt} a={a}");
                assert_eq!(ra.ashr(amt).to_bitvec(), a.ashr(amt), "ashr w={w} amt={amt} a={a}");
            }
            for nw in [w, w + 1, w + 63, w + 64, w + 65] {
                assert_eq!(ra.zext(nw).to_bitvec(), a.zext(nw), "zext w={w}->{nw} a={a}");
                assert_eq!(ra.sext(nw).to_bitvec(), a.sext(nw), "sext w={w}->{nw} a={a}");
            }
            for b in &edges {
                let rb = RefBitVec::from_bitvec(b);
                assert_eq!(ra.wrapping_add(&rb).to_bitvec(), a.wrapping_add(b), "add w={w}");
                assert_eq!(ra.wrapping_sub(&rb).to_bitvec(), a.wrapping_sub(b), "sub w={w}");
                assert_eq!(ra.wrapping_mul(&rb).to_bitvec(), a.wrapping_mul(b), "mul w={w}");
                assert_eq!(
                    ra.widening_mul_unsigned(&rb).to_bitvec(),
                    a.widening_mul_unsigned(b),
                    "wmu w={w}"
                );
                assert_eq!(
                    ra.widening_mul_signed(&rb).to_bitvec(),
                    a.widening_mul_signed(b),
                    "wms w={w}"
                );
                assert_eq!(ra.cmp_signed(&rb), a.cmp_signed(b), "cmps w={w}");
                assert_eq!(ra.cmp_unsigned(&rb), a.cmp_unsigned(b), "cmpu w={w}");
            }
        }
    }
}

/// Panic messages are part of the public contract and must not drift.
#[test]
fn panic_messages_unchanged() {
    let msg = |f: Box<dyn Fn() + std::panic::UnwindSafe>| -> String {
        let err = std::panic::catch_unwind(f).unwrap_err();
        err.downcast_ref::<String>().cloned().unwrap_or_else(|| {
            err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap_or_default()
        })
    };
    assert!(msg(Box::new(|| {
        BitVec::zero(0);
    }))
    .contains("BitVec width must be at least 1"));
    assert!(msg(Box::new(|| {
        BitVec::from_u64(3, 8);
    }))
    .contains("value 8 does not fit in 3 unsigned bits"));
    assert!(msg(Box::new(|| {
        BitVec::from_i64(3, 4);
    }))
    .contains("value 4 does not fit in 3 signed bits"));
    assert!(msg(Box::new(|| {
        BitVec::zero(4).trunc(5);
    }))
    .contains("trunc to 5 from narrower width 4"));
    assert!(msg(Box::new(|| {
        BitVec::zero(4).zext(3);
    }))
    .contains("zext to 3 from wider width 4"));
    assert!(msg(Box::new(|| {
        BitVec::zero(4).sext(3);
    }))
    .contains("sext to 3 from wider width 4"));
    assert!(msg(Box::new(|| {
        BitVec::zero(4).bit(4);
    }))
    .contains("bit index 4 out of range for width 4"));
    assert!(msg(Box::new(|| {
        BitVec::zero(4).wrapping_add(&BitVec::zero(5));
    }))
    .contains("wrapping_add requires equal widths (got 4 and 5)"));
}
