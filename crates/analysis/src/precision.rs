//! Required precision (Definition 4.1) and the Theorem 4.2 transformation.

use dp_dfg::{Dfg, EdgeId, NodeId, NodeKind};
use dp_trace::{Rule, Subject, TraceLog};

/// The required precision `r(p)` at every port of a DFG.
///
/// Produced by [`required_precision`]. Intuitively, `r(p) = n` means at
/// most the `n` least significant bits of the signal at `p` can influence
/// any primary output: every higher bit is truncated somewhere on every
/// downstream path.
#[derive(Debug, Clone)]
pub struct PrecisionAnalysis {
    /// `r` at the (single) output port of each node.
    pub(crate) out_port: Vec<usize>,
    /// `r` at the input ports of each node (one shared value — Definition
    /// 4.1 gives every input port of a node the same `r`).
    pub(crate) in_port: Vec<usize>,
}

impl PrecisionAnalysis {
    /// `r` at the output port of `node`. For nodes with no out-edges this
    /// is 0 (nothing downstream observes them).
    pub fn output_port(&self, node: NodeId) -> usize {
        self.out_port[node.index()]
    }

    /// `r` at the input ports of `node` (Definition 4.1 assigns all input
    /// ports of a node the same requirement).
    pub fn input_port(&self, node: NodeId) -> usize {
        self.in_port[node.index()]
    }
}

/// Computes required precision for every port by one reverse-topological
/// sweep (Definition 4.1).
///
/// # Panics
///
/// Panics if the graph is cyclic.
///
/// See the [crate documentation](crate) for an example.
pub fn required_precision(g: &Dfg) -> PrecisionAnalysis {
    let order = g.reverse_topo_order().expect("required precision needs an acyclic graph");
    let mut rp =
        PrecisionAnalysis { out_port: vec![0; g.num_nodes()], in_port: vec![0; g.num_nodes()] };
    for n in order {
        let (out, inp) = rp_node_values(g, n, &rp.in_port);
        rp.out_port[n.index()] = out;
        rp.in_port[n.index()] = inp;
    }
    rp
}

/// The Definition 4.1 equations for one node, reading the already-settled
/// `r` at the input ports of its successors: `r` at the output port is the
/// max over out-edges of `min(w(e), r(p_d(e)))`, and `r` at the input ports
/// is the node width for outputs and `min(out, w(N))` otherwise.
///
/// Shared by the full reverse sweep and the incremental worklist update so
/// both compute the identical fixpoint.
pub(crate) fn rp_node_values(g: &Dfg, n: NodeId, in_port: &[usize]) -> (usize, usize) {
    let node = g.node(n);
    let out = node
        .out_edges()
        .iter()
        .map(|&e| {
            let edge = g.edge(e);
            edge.width().min(in_port[edge.dst().index()])
        })
        .max()
        .unwrap_or(0);
    let inp = match node.kind() {
        NodeKind::Output => node.width(),
        _ => out.min(node.width()),
    };
    (out, inp)
}

/// Applies the Theorem 4.2 node clamp to one node if it fires, emitting the
/// `RP-CLAMP` trace event. Returns whether the width changed.
///
/// This is the single definition of the clamp decision: the full sweep
/// calls it for every node, the incremental engine only for candidates —
/// non-firing candidates emit nothing, so both produce identical traces.
pub(crate) fn clamp_node(
    g: &mut Dfg,
    rp: &PrecisionAnalysis,
    n: NodeId,
    tr: &mut TraceLog,
) -> bool {
    // Outputs and inputs keep their declared interface width; a
    // constant's width is pinned to its value's width.
    if matches!(g.node(n).kind(), NodeKind::Output | NodeKind::Input | NodeKind::Const(_)) {
        return false;
    }
    let r = rp.output_port(n).max(1);
    let w = g.node(n).width();
    if r >= w {
        return false;
    }
    g.set_node_width(n, r);
    // The binding constraint is the out-edge achieving the max in
    // Definition 4.1; the last event there (or at its reader) is
    // what made `r` this small.
    let binding = g
        .node(n)
        .out_edges()
        .iter()
        .copied()
        .max_by_key(|&e| {
            let edge = g.edge(e);
            edge.width().min(rp.input_port(edge.dst()))
        })
        .map(|e| (e, g.edge(e).dst()));
    let parent =
        binding.and_then(|(e, dst)| tr.last_edge(e.index()).or_else(|| tr.last_node(dst.index())));
    tr.emit_caused(Rule::RpClamp, Subject::Node(n.index()), w, r, parent);
    true
}

/// Applies the Theorem 4.2 edge clamp to one edge if it fires, emitting the
/// `RP-CLAMP-EDGE` trace event. Returns whether the width changed.
pub(crate) fn clamp_edge(
    g: &mut Dfg,
    rp: &PrecisionAnalysis,
    e: EdgeId,
    tr: &mut TraceLog,
) -> bool {
    let dst = g.edge(e).dst();
    let r = rp.input_port(dst).max(1);
    let w_e = g.edge(e).width();
    if r >= w_e {
        return false;
    }
    g.set_edge_width(e, r);
    let parent = tr.last_node(dst.index()).or_else(|| tr.last_edge(e.index()));
    tr.emit_caused(Rule::RpClampEdge, Subject::Edge(e.index()), w_e, r, parent);
    true
}

/// Applies the Theorem 4.2 width clamp in place:
/// `w(n) := min(w(n), r(p_o(n)))` and `w(e) := min(w(e), r(p_d(e)))`,
/// preserving functionality. Returns how many node and edge widths shrank.
///
/// Widths are floored at 1 bit (the data model has no zero-width signals; a
/// completely unobserved node keeps a 1-bit stub).
pub fn rp_transform(g: &mut Dfg) -> (usize, usize) {
    rp_transform_with(g, &mut TraceLog::disabled())
}

/// [`rp_transform`] with decision provenance: every clamp emits an
/// `RP-CLAMP` / `RP-CLAMP-EDGE` trace event. A node clamp's cause is the
/// last decision about the out-edge that bounded its requirement; an edge
/// clamp's cause is the last decision about its reader.
pub fn rp_transform_with(g: &mut Dfg, tr: &mut TraceLog) -> (usize, usize) {
    let rp = required_precision(g);
    let mut node_changes = 0;
    let mut edge_changes = 0;
    // Clamps never add nodes or edges, so plain index loops suffice — no
    // id-list snapshots.
    for i in 0..g.num_nodes() {
        node_changes += usize::from(clamp_node(g, &rp, NodeId::from_index(i), tr));
    }
    for i in 0..g.num_edges() {
        edge_changes += usize::from(clamp_edge(g, &rp, EdgeId::from_index(i), tr));
    }
    (node_changes, edge_changes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_bitvec::{BitVec, Signedness::*};
    use dp_dfg::OpKind;

    /// Paper Figure 2 reconstruction: G4 has a 5-bit output, so every
    /// signal's required precision is 5.
    fn figure2() -> (Dfg, NodeId, NodeId, NodeId) {
        let mut g = Dfg::new();
        let a = g.input("A", 8);
        let b = g.input("B", 8);
        let c = g.input("C", 9);
        let n1 = g.op(OpKind::Add, 9, &[(a, Signed), (b, Signed)]);
        // Truncating edge into the second adder, then sign-extension: the
        // Figure 1 bottleneck, defused here by the narrow output.
        let n3 = g.op_with_edges(OpKind::Add, 9, &[(n1, 7, Signed), (c, 9, Signed)]);
        g.output("R", 5, n3, Signed);
        (g, n1, n3, c)
    }

    #[test]
    fn figure2_everything_needs_five_bits() {
        let (g, n1, n3, _) = figure2();
        let rp = required_precision(&g);
        assert_eq!(rp.input_port(n3), 5);
        assert_eq!(rp.output_port(n3), 5);
        assert_eq!(rp.output_port(n1), 5);
        assert_eq!(rp.input_port(n1), 5);
        for &i in g.inputs() {
            assert_eq!(rp.output_port(i), 5);
        }
    }

    #[test]
    fn figure2_transform_shrinks_widths() {
        let (mut g, n1, n3, _) = figure2();
        let reference = g.clone();
        let (nodes, edges) = rp_transform(&mut g);
        assert!(nodes >= 2 && edges >= 2, "shrunk {nodes} nodes, {edges} edges");
        assert_eq!(g.node(n1).width(), 5);
        assert_eq!(g.node(n3).width(), 5);
        // Functional equivalence on exhaustive-ish random values.
        for seed in 0..200u64 {
            let inputs = vec![
                BitVec::from_u64_wrapping(8, seed.wrapping_mul(0x9E37_79B9)),
                BitVec::from_u64_wrapping(8, seed.wrapping_mul(0x85EB_CA6B) >> 3),
                BitVec::from_u64_wrapping(9, seed.wrapping_mul(0xC2B2_AE35) >> 5),
            ];
            assert_eq!(
                reference.evaluate(&inputs).unwrap(),
                g.evaluate(&inputs).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn wide_output_requires_everything() {
        // If the output is as wide as the arithmetic, nothing shrinks.
        let mut g = Dfg::new();
        let a = g.input("a", 8);
        let b = g.input("b", 8);
        let s = g.op(OpKind::Add, 9, &[(a, Unsigned), (b, Unsigned)]);
        g.output("o", 9, s, Unsigned);
        let (n, e) = rp_transform(&mut g);
        assert_eq!((n, e), (0, 0));
        assert_eq!(g.node(s).width(), 9);
    }

    #[test]
    fn fanout_takes_the_maximum_requirement() {
        // One consumer needs 3 bits, another needs 7: the producer needs 7.
        let mut g = Dfg::new();
        let a = g.input("a", 8);
        let b = g.input("b", 8);
        let s = g.op(OpKind::Add, 9, &[(a, Unsigned), (b, Unsigned)]);
        g.output("narrow", 3, s, Unsigned);
        g.output("wide", 7, s, Unsigned);
        let rp = required_precision(&g);
        assert_eq!(rp.output_port(s), 7);
        rp_transform(&mut g);
        assert_eq!(g.node(s).width(), 7);
    }

    #[test]
    fn narrow_edge_caps_requirement() {
        // The edge between the adders carries only 4 bits, so upstream only
        // needs 4 even though the final output is wide.
        let mut g = Dfg::new();
        let a = g.input("a", 8);
        let b = g.input("b", 8);
        let s1 = g.op(OpKind::Add, 9, &[(a, Unsigned), (b, Unsigned)]);
        let s2 = g.op_with_edges(OpKind::Add, 9, &[(s1, 4, Unsigned), (b, 8, Unsigned)]);
        g.output("o", 9, s2, Unsigned);
        let rp = required_precision(&g);
        assert_eq!(rp.output_port(s1), 4);
        assert_eq!(rp.output_port(s2), 9);
    }

    #[test]
    fn unused_node_has_zero_requirement() {
        let mut g = Dfg::new();
        let a = g.input("a", 8);
        let dangling = g.op(OpKind::Neg, 8, &[(a, Unsigned)]);
        g.output("o", 8, a, Unsigned);
        let rp = required_precision(&g);
        assert_eq!(rp.output_port(dangling), 0);
        // The transform floors the width at 1 rather than erasing the node.
        rp_transform(&mut g);
        assert_eq!(g.node(dangling).width(), 1);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn transform_preserves_random_graphs() {
        use dp_dfg::gen::{random_dfg, random_inputs, GenConfig};
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xDA01);
        for case in 0..40 {
            let g0 = random_dfg(&mut rng, &GenConfig::default());
            let mut g1 = g0.clone();
            rp_transform(&mut g1);
            g1.validate().unwrap();
            for _ in 0..20 {
                let inputs = random_inputs(&g0, &mut rng);
                assert_eq!(
                    g0.evaluate(&inputs).unwrap(),
                    g1.evaluate(&inputs).unwrap(),
                    "case {case}"
                );
            }
        }
    }
}
