//! QoR counters and span recording, pinned on the paper's Figure 3.

use datapath_merge::prelude::*;
use datapath_merge::testcases::figures;

/// Figure 3 by hand: operators N1/N2/N3 are 8-bit and N4 is 9-bit, so the
/// pre-transformation operator width is 33 bits; the edges are four 3-bit
/// input edges, two 8-bit, three 9-bit and the 9-bit edge into the output,
/// totalling 55 bits. The new flow merges the whole graph into one
/// cluster, paying exactly one carry-propagate adder.
#[test]
fn fig3_metrics_match_hand_computed_values() {
    let fig = figures::fig3();
    let mut rec = Recorder::new();
    let mut tr = TraceLog::disabled();
    let flow =
        run_flow_with(&fig.g, MergeStrategy::New, &SynthConfig::default(), &mut rec, &mut tr)
            .unwrap();
    let m = &flow.metrics;
    assert_eq!(m.strategy, "new-merge");
    assert_eq!(m.node_width_before, 33);
    assert_eq!(m.edge_width_before, 55);
    assert!(m.node_width_after < m.node_width_before, "widths must shrink");
    assert_eq!(m.clusters, 1);
    assert_eq!(m.cpa_count, 1);
    assert!(m.csa_depth >= 1, "five addends cannot fit in two rows");
    assert!(m.transform_converged);
    assert!(m.transform_rounds >= 1);
    assert!(m.gates > 0);
    assert_eq!(m.delay_ns, 0.0, "delay needs a library, filled by qor()");

    let lib = Library::synthetic_025um();
    let q = flow.qor(&lib);
    assert!(q.delay_ns > 0.0);
    assert!(q.area > 0.0);
    // qor() only fills the library-dependent fields.
    assert_eq!(q.gates, m.gates);
    assert_eq!(q.clusters, m.clusters);
}

/// The recorder sees the whole stage hierarchy: flow root, clustering
/// (with the width pipeline nested inside), synthesis.
#[test]
fn fig3_spans_nest_by_stage() {
    let fig = figures::fig3();
    let mut rec = Recorder::new();
    let mut tr = TraceLog::disabled();
    run_flow_with(&fig.g, MergeStrategy::New, &SynthConfig::default(), &mut rec, &mut tr).unwrap();
    let names: Vec<(&str, usize)> = rec.records().iter().map(|r| (r.name(), r.depth())).collect();
    assert_eq!(names[0], ("flow new-merge", 0));
    assert!(names.contains(&("clustering", 1)), "{names:?}");
    assert!(names.contains(&("cluster_max", 2)), "{names:?}");
    assert!(names.contains(&("optimize_widths", 3)), "{names:?}");
    assert!(names.contains(&("synthesize", 1)), "{names:?}");
    assert!(names.contains(&("emit_clusters", 2)), "{names:?}");
}

/// Everything in `FlowMetrics` is a pure function of design and config, so
/// serializing two independent runs must give byte-identical JSON — the
/// invariant `dpmc bench` determinism rests on.
#[test]
fn flow_metrics_json_identical_across_runs() {
    let render = || {
        let fig = figures::fig3();
        let flow = run_flow(&fig.g, MergeStrategy::New, &SynthConfig::default()).unwrap();
        flow.qor(&Library::synthetic_025um()).to_json().render()
    };
    let (a, b) = (render(), render());
    assert_eq!(a, b);
    assert!(!a.contains("\"us\""), "metrics must carry no timing fields: {a}");
}
