//! `dpmc` — the datapath merge compiler.
//!
//! Reads a design in the [`datapath_merge::dsl`] text format, runs the
//! requested merging flow, and reports clusters, delay and area; can also
//! emit structural Verilog and Graphviz DOT, run the timing-driven
//! optimizer, and self-check the netlist against the design.
//!
//! ```text
//! dpmc design.dp [--flow new|old|none|all] [--adder ks|csel|ripple]
//!      [--reduction dadda|wallace] [--no-compress]
//!      [--optimize TARGET_NS] [--emit-verilog FILE] [--emit-dot FILE]
//!      [--check N]
//! dpmc lint design.dp [--deny-warnings]
//! dpmc explain design.dp [--node N | --port P] [--json]
//! dpmc dot design.dp [--annotate] [--out FILE]
//! dpmc bench [--designs all|NAME,NAME,...] [--jobs N] [--out FILE]
//!      [--compare BASELINE.json] [--max-regress-pct N]
//! ```
//!
//! `dpmc lint` runs the new-merge flow and then audits the optimized
//! graph, clustering and netlist with the [`datapath_merge::verify`]
//! checker passes, printing one diagnostic per line. The exit code is
//! non-zero if any error-level diagnostic fires (or any warning under
//! `--deny-warnings`).
//!
//! `dpmc explain` runs the new-merge flow with provenance recording
//! enabled and prints the causal chain of RP/IC/clustering decisions
//! behind a node's final width and cluster assignment (see
//! [`datapath_merge::explain`]). `--node` accepts a DSL name, `nK`, or a
//! bare index; `--port` accepts a design input/output name. With neither,
//! every operator is explained.
//!
//! `dpmc dot` renders the design as Graphviz DOT; with `--annotate` it
//! renders the *optimized* graph instead, coloring merged clusters and
//! break nodes and labelling nodes/edges with required precision,
//! information content and the provenance rule that last changed them.
//!
//! `dpmc bench` runs a set of designs (the paper figures `fig1`–`fig4`,
//! evaluation designs `D1`–`D5`, and the generated scaling family
//! `S64`–`S1000` by default; `.dp` files also accepted in `--designs`)
//! through the old-merge and new-merge flows and emits a deterministic
//! JSON report of per-stage wall-times, QoR counters and provenance event
//! counts — see EXPERIMENTS.md for the schema. Designs run on a pool of
//! `--jobs` worker threads (default: available parallelism); the report
//! is assembled in design order, so the output is byte-identical for any
//! job count. Without `--out` the JSON goes to stdout. `--compare` diffs
//! the run against a committed baseline: counters must match exactly,
//! per-flow wall times may regress at most `--max-regress-pct` percent
//! (default 50); any violation makes the exit code non-zero.

use std::process::ExitCode;

use datapath_merge::prelude::*;

struct Args {
    file: String,
    flows: Vec<MergeStrategy>,
    config: SynthConfig,
    optimize_target: Option<f64>,
    emit_verilog: Option<String>,
    emit_dot: Option<String>,
    check: usize,
    lint: bool,
    deny_warnings: bool,
    explain: bool,
    node: Option<String>,
    json: bool,
    dot: bool,
    annotate: bool,
    bench: bool,
    designs: Vec<String>,
    jobs: Option<usize>,
    out: Option<String>,
    compare: Option<String>,
    max_regress_pct: f64,
}

const USAGE: &str = "usage: dpmc <design.dp> [--flow new|old|none|all] \
[--adder ks|csel|ripple] [--reduction dadda|wallace] [--no-compress] \
[--optimize TARGET_NS] [--emit-verilog FILE] [--emit-dot FILE] [--check N]\n\
       dpmc lint <design.dp> [--deny-warnings]\n\
       dpmc explain <design.dp> [--node N | --port P] [--json]\n\
       dpmc dot <design.dp> [--annotate] [--out FILE]\n\
       dpmc bench [--designs all|NAME,NAME,...] [--jobs N] [--out FILE] \
[--compare BASELINE.json] [--max-regress-pct N]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        file: String::new(),
        flows: vec![MergeStrategy::New],
        config: SynthConfig::default(),
        optimize_target: None,
        emit_verilog: None,
        emit_dot: None,
        check: 20,
        lint: false,
        deny_warnings: false,
        explain: false,
        node: None,
        json: false,
        dot: false,
        annotate: false,
        bench: false,
        designs: Vec::new(),
        jobs: None,
        out: None,
        compare: None,
        max_regress_pct: 50.0,
    };
    let mut subcommand = false;
    let mut it = std::env::args().skip(1);
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--flow" => {
                args.flows = match value(&mut it, "--flow")?.as_str() {
                    "new" => vec![MergeStrategy::New],
                    "old" => vec![MergeStrategy::Old],
                    "none" => vec![MergeStrategy::None],
                    "all" => vec![MergeStrategy::None, MergeStrategy::Old, MergeStrategy::New],
                    other => return Err(format!("unknown flow `{other}`")),
                }
            }
            "--adder" => {
                args.config.adder = match value(&mut it, "--adder")?.as_str() {
                    "ks" | "kogge-stone" => AdderKind::KoggeStone,
                    "csel" | "carry-select" => AdderKind::CarrySelect,
                    "ripple" => AdderKind::Ripple,
                    other => return Err(format!("unknown adder `{other}`")),
                }
            }
            "--reduction" => {
                args.config.reduction = match value(&mut it, "--reduction")?.as_str() {
                    "dadda" => ReductionKind::Dadda,
                    "wallace" => ReductionKind::Wallace,
                    other => return Err(format!("unknown reduction `{other}`")),
                }
            }
            "--no-compress" => args.config.sign_ext_compression = false,
            "--optimize" => {
                args.optimize_target = Some(
                    value(&mut it, "--optimize")?
                        .parse()
                        .map_err(|_| "bad --optimize value".to_string())?,
                )
            }
            "--emit-verilog" => args.emit_verilog = Some(value(&mut it, "--emit-verilog")?),
            "--emit-dot" => args.emit_dot = Some(value(&mut it, "--emit-dot")?),
            "--check" => {
                args.check = value(&mut it, "--check")?
                    .parse()
                    .map_err(|_| "bad --check value".to_string())?
            }
            "--deny-warnings" => args.deny_warnings = true,
            "--node" | "--port" => args.node = Some(value(&mut it, &arg)?),
            "--json" => args.json = true,
            "--annotate" => args.annotate = true,
            "--designs" => {
                args.designs = value(&mut it, "--designs")?.split(',').map(str::to_string).collect()
            }
            "--jobs" => {
                let n: usize = value(&mut it, "--jobs")?
                    .parse()
                    .map_err(|_| "bad --jobs value".to_string())?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                args.jobs = Some(n);
            }
            "--out" => args.out = Some(value(&mut it, "--out")?),
            "--compare" => args.compare = Some(value(&mut it, "--compare")?),
            "--max-regress-pct" => {
                args.max_regress_pct = value(&mut it, "--max-regress-pct")?
                    .parse()
                    .map_err(|_| "bad --max-regress-pct value".to_string())?
            }
            "lint" if !subcommand && args.file.is_empty() => (args.lint, subcommand) = (true, true),
            "explain" if !subcommand && args.file.is_empty() => {
                (args.explain, subcommand) = (true, true)
            }
            "dot" if !subcommand && args.file.is_empty() => (args.dot, subcommand) = (true, true),
            "bench" if !subcommand && args.file.is_empty() => {
                (args.bench, subcommand) = (true, true)
            }
            other if !args.bench && args.file.is_empty() && !other.starts_with('-') => {
                args.file = other.to_string()
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.bench {
        if !args.file.is_empty() {
            return Err("`dpmc bench` takes designs via --designs, not a positional".to_string());
        }
        if args.designs.is_empty() {
            args.designs = vec!["all".to_string()];
        }
    } else {
        if args.file.is_empty() {
            return Err("no design file given".to_string());
        }
        if !args.designs.is_empty() {
            return Err("--designs only applies to `dpmc bench`".to_string());
        }
        if args.out.is_some() && !args.dot {
            return Err("--out only applies to `dpmc bench` and `dpmc dot`".to_string());
        }
        if args.compare.is_some() {
            return Err("--compare only applies to `dpmc bench`".to_string());
        }
        if args.jobs.is_some() {
            return Err("--jobs only applies to `dpmc bench`".to_string());
        }
    }
    if args.deny_warnings && !args.lint {
        return Err("--deny-warnings only applies to `dpmc lint`".to_string());
    }
    if (args.node.is_some() || args.json) && !args.explain {
        return Err("--node/--port/--json only apply to `dpmc explain`".to_string());
    }
    if args.annotate && !args.dot {
        return Err("--annotate only applies to `dpmc dot`".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dpmc: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = if args.lint {
        run_lint(&args)
    } else if args.explain {
        run_explain(&args).map(|()| true)
    } else if args.dot {
        run_dot(&args).map(|()| true)
    } else if args.bench {
        run_bench(&args)
    } else {
        run(&args).map(|()| true)
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("dpmc: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `dpmc lint`: run the new-merge flow, then audit every produced
/// artifact with the semantic verifier. Returns `Ok(false)` when the
/// design fails the lint gate.
fn run_lint(args: &Args) -> Result<bool, String> {
    let text = std::fs::read_to_string(&args.file)
        .map_err(|e| format!("cannot read {}: {e}", args.file))?;
    let base = datapath_merge::dsl::parse_design(&text).map_err(|e| e.to_string())?;
    let mut g = base.clone();
    let (clustering, merge_report) = cluster_max(&mut g);
    let netlist = synthesize(&g, &clustering, &args.config).map_err(|e| e.to_string())?.sweep();

    let cx = Context::new(&g)
        .baseline(&base)
        .clustering(&clustering)
        .netlist(&netlist)
        .transform(&merge_report.transform)
        .optimized(true);
    let report = Verifier::default().run(&cx);

    print!("{}", report.render(&g));
    println!("{}: {}", args.file, report.summary());
    println!("{}: width pipeline {}", args.file, merge_report.transform.summary());
    let denied = report.has_errors() || (args.deny_warnings && report.count(Severity::Warn) > 0);
    Ok(!denied)
}

/// `dpmc explain`: re-run the new-merge flow with provenance recording
/// and print the causal chain behind the requested node's final width and
/// cluster assignment (or every operator's, without `--node`/`--port`).
fn run_explain(args: &Args) -> Result<(), String> {
    use datapath_merge::explain::{self, run_traced};
    let text = std::fs::read_to_string(&args.file)
        .map_err(|e| format!("cannot read {}: {e}", args.file))?;
    let (g, names) = datapath_merge::dsl::parse_design_named(&text).map_err(|e| e.to_string())?;
    let ex = run_traced(&g);

    let label_of = |n: NodeId| -> String {
        names
            .iter()
            .find(|(_, &id)| id == n)
            .map(|(name, _)| name.clone())
            .or_else(|| {
                if n.index() < g.num_nodes() {
                    g.node(n).name().map(str::to_string)
                } else {
                    None
                }
            })
            .unwrap_or_else(|| n.to_string())
    };
    let targets: Vec<NodeId> = match &args.node {
        Some(spec) => vec![explain::resolve_node(&g, &names, spec)?],
        None => ex.graph.node_ids().filter(|&n| ex.graph.node(n).kind().is_op()).collect(),
    };

    if args.json {
        let nodes: Vec<Json> =
            targets.iter().map(|&n| explain::explain_node_json(&g, &ex, n, &label_of(n))).collect();
        let doc = Json::obj()
            .field("design", args.file.as_str())
            .field("pipeline", ex.report.transform.summary())
            .field("trace_events", ex.trace.len() as i64)
            .field("nodes", nodes);
        println!("{}", doc.render_pretty());
        return Ok(());
    }
    println!("{}: width pipeline: {}", args.file, ex.report.transform.summary());
    println!("{}: {} provenance event(s) recorded", args.file, ex.trace.len());
    for &n in &targets {
        println!();
        print!("{}", explain::explain_node(&g, &ex, n, &label_of(n)));
    }
    Ok(())
}

/// `dpmc dot`: render the design (or, with `--annotate`, the optimized
/// graph with provenance annotations) as Graphviz DOT.
fn run_dot(args: &Args) -> Result<(), String> {
    use datapath_merge::explain::{annotations, run_traced};
    let text = std::fs::read_to_string(&args.file)
        .map_err(|e| format!("cannot read {}: {e}", args.file))?;
    let g = datapath_merge::dsl::parse_design(&text).map_err(|e| e.to_string())?;
    let dot = if args.annotate {
        let ex = run_traced(&g);
        ex.graph.to_dot_annotated(&annotations(&ex))
    } else {
        g.to_dot()
    };
    match &args.out {
        Some(path) => {
            std::fs::write(path, &dot).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote DOT to {path}");
        }
        None => print!("{dot}"),
    }
    Ok(())
}

/// The named designs `dpmc bench` knows out of the box: the paper's
/// illustrative figures, the five reconstructed evaluation designs, and
/// the generated scaling family.
fn builtin_designs() -> Vec<(String, Dfg)> {
    use datapath_merge::testcases::{all_designs, figures, scaling_designs};
    let mut v = vec![
        ("fig1".to_string(), figures::fig1().g),
        ("fig2".to_string(), figures::fig2().g),
        ("fig3".to_string(), figures::fig3().g),
        ("fig4".to_string(), figures::fig4_graph()),
    ];
    v.extend(all_designs().into_iter().map(|t| (t.name.to_string(), t.dfg)));
    v.extend(scaling_designs().into_iter().map(|t| (t.name.to_string(), t.dfg)));
    v
}

/// Resolves `--designs` specs: `all`, a built-in name, or a `.dp` file.
fn collect_designs(specs: &[String]) -> Result<Vec<(String, Dfg)>, String> {
    let builtin = builtin_designs();
    if specs.len() == 1 && specs[0] == "all" {
        return Ok(builtin);
    }
    let mut out = Vec::new();
    for spec in specs {
        if let Some((name, g)) = builtin.iter().find(|(n, _)| n == spec) {
            out.push((name.clone(), g.clone()));
        } else if spec.ends_with(".dp") {
            let text =
                std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec}: {e}"))?;
            let g = datapath_merge::dsl::parse_design(&text).map_err(|e| e.to_string())?;
            out.push((module_name(spec), g));
        } else {
            let names: Vec<&str> = builtin.iter().map(|(n, _)| n.as_str()).collect();
            return Err(format!(
                "unknown design `{spec}` (built-ins: {}; or pass a .dp file)",
                names.join(", ")
            ));
        }
    }
    Ok(out)
}

/// Benchmarks one design through both flows; the building block the
/// parallel driver farms out. Pure function of the design and config
/// (modulo the wall-times inside `spans`), so designs can run on any
/// worker in any order.
fn bench_design(name: &str, g: &Dfg, config: &SynthConfig, lib: &Library) -> Result<Json, String> {
    let mut flows = Vec::new();
    for strategy in [MergeStrategy::Old, MergeStrategy::New] {
        let mut rec = Recorder::new();
        let mut tr = TraceLog::new();
        let flow = run_flow_with(g, strategy, config, &mut rec, &mut tr)
            .map_err(|e| format!("{name} [{strategy}]: {e}"))?;
        let mut netlist = flow.netlist.clone();
        let sweep = rec.span("fold_sweep");
        datapath_merge::opt::fold_constants(&mut netlist);
        let netlist = netlist.sweep();
        rec.finish(sweep);
        let sta = rec.span("sta");
        let delay_ns = netlist.longest_path(lib).delay_ns;
        let area = netlist.area(lib);
        rec.finish(sta);
        let mut cx = Context::new(&flow.graph)
            .baseline(g)
            .clustering(&flow.clustering)
            .netlist(&netlist)
            .optimized(strategy == MergeStrategy::New);
        if let Some(m) = &flow.merge {
            cx = cx.transform(&m.transform);
        }
        let report = Verifier::default().run_with(&cx, &mut rec);

        // QoR on the final (folded + swept) netlist, not the raw one.
        let mut metrics = flow.metrics.clone();
        metrics.gates = netlist.num_gates();
        metrics.delay_ns = delay_ns;
        metrics.area = area;
        metrics.verify_errors = report.count(Severity::Error);
        metrics.verify_warnings = report.count(Severity::Warn);
        metrics.verify_infos = report.count(Severity::Info);
        flows.push(
            Json::obj()
                .field("strategy", strategy.to_string())
                .field("metrics", metrics.to_json())
                .field("trace_events", tr.len() as i64)
                .field("spans", rec.to_json()),
        );
    }
    Ok(Json::obj().field("design", name).field("flows", flows))
}

/// `dpmc bench`: run every requested design through the old-merge and
/// new-merge flows, recording per-stage wall-times, QoR counters and
/// provenance event counts, and emit one deterministic JSON document
/// (timings are the only fields that vary between runs). Designs are
/// distributed over `--jobs` worker threads pulling from a shared index;
/// results land in per-design slots, so the report is identical for any
/// job count. With `--compare`, additionally diff against a committed
/// baseline; returns `Ok(false)` when the regression gate fails.
fn run_bench(args: &Args) -> Result<bool, String> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let lib = Library::synthetic_025um();
    let designs = collect_designs(&args.designs)?;
    let jobs = args
        .jobs
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .min(designs.len().max(1));

    // Slot-indexed results: worker i writes only slot `next.fetch_add()`,
    // so assembly order (and thus the report) is independent of scheduling.
    let slots: Vec<Mutex<Option<Result<Json, String>>>> =
        designs.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((name, g)) = designs.get(i) else { break };
                let row = bench_design(name, g, &args.config, &lib);
                *slots[i].lock().unwrap() = Some(row);
            });
        }
    });
    let mut rows = Vec::with_capacity(designs.len());
    for slot in slots {
        rows.push(slot.into_inner().unwrap().expect("every design slot filled")?);
    }
    let doc = Json::obj().field("schema", "dpmc-bench/3").field("designs", rows);
    let rendered = doc.render_pretty();
    match &args.out {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {} design(s) x 2 flows to {path}", designs.len());
        }
        None if args.compare.is_none() => print!("{rendered}"),
        None => {}
    }
    if let Some(path) = &args.compare {
        use datapath_merge::compare::{compare_reports, CompareConfig};
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let baseline = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let cfg = CompareConfig { max_regress_pct: args.max_regress_pct, ..Default::default() };
        let report = compare_reports(&baseline, &doc, &cfg);
        print!("{path}: {}", report.render());
        return Ok(report.passed());
    }
    Ok(true)
}

fn run(args: &Args) -> Result<(), String> {
    let text = std::fs::read_to_string(&args.file)
        .map_err(|e| format!("cannot read {}: {e}", args.file))?;
    let g = datapath_merge::dsl::parse_design(&text).map_err(|e| e.to_string())?;
    let lib = Library::synthetic_025um();
    println!(
        "{}: {} inputs, {} operators, {} outputs",
        args.file,
        g.inputs().len(),
        g.op_nodes().count(),
        g.outputs().len()
    );

    for &strategy in &args.flows {
        let flow = run_flow(&g, strategy, &args.config).map_err(|e| e.to_string())?;
        let mut netlist = flow.netlist;
        datapath_merge::opt::fold_constants(&mut netlist);
        let mut netlist = netlist.sweep();
        let timing = netlist.longest_path(&lib);
        println!(
            "\n[{strategy}] clusters: {}  (sizes {:?})",
            flow.clustering.len(),
            flow.clustering.size_histogram()
        );
        println!(
            "[{strategy}] delay {:.3} ns  area {:.1}  gates {}",
            timing.delay_ns,
            netlist.area(&lib),
            netlist.num_gates()
        );
        let path = netlist.critical_path(&lib);
        if !path.is_empty() {
            let cells: Vec<String> = path
                .iter()
                .map(|&gid| {
                    let (kind, drive) = netlist.gate_info(gid);
                    format!("{kind}/{drive}")
                })
                .collect();
            let shown = 12.min(cells.len());
            println!(
                "[{strategy}] critical path ({} gates): {}{}",
                path.len(),
                cells[..shown].join(" -> "),
                if cells.len() > shown { " -> ..." } else { "" }
            );
        }
        if strategy == MergeStrategy::New {
            println!(
                "[{strategy}] total operator width {} -> {} after analysis",
                g.total_op_width(),
                flow.graph.total_op_width()
            );
            if let Some(m) = &flow.merge {
                println!("[{strategy}] width pipeline: {}", m.transform.summary());
            }
        }

        if let Some(target) = args.optimize_target {
            let report = optimize(
                &mut netlist,
                &lib,
                &OptConfig { target_delay_ns: target, ..OptConfig::default() },
            );
            println!(
                "[{strategy}] optimized to {:.3} ns ({}) in {:.4} s: {} sized, {} buffered, area {:.1}",
                report.end_delay_ns,
                if report.met { "target met" } else { "target NOT met" },
                report.runtime.as_secs_f64(),
                report.gates_sized,
                report.buffers_inserted,
                report.end_area
            );
        }

        if args.check > 0 {
            check_equivalence(&g, &netlist, args.check)?;
            println!("[{strategy}] verified against the design on {} random vectors", args.check);
        }

        // Emissions use the last requested flow (or the single one).
        if let Some(path) = &args.emit_verilog {
            let module = module_name(&args.file);
            std::fs::write(path, netlist.to_verilog(&module))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("[{strategy}] wrote Verilog to {path}");
        }
        if let Some(path) = &args.emit_dot {
            std::fs::write(path, flow.graph.to_dot())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("[{strategy}] wrote DOT to {path}");
        }
    }
    Ok(())
}

fn module_name(file: &str) -> String {
    let base = std::path::Path::new(file).file_stem().and_then(|s| s.to_str()).unwrap_or("design");
    base.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

fn check_equivalence(g: &Dfg, netlist: &Netlist, trials: usize) -> Result<(), String> {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xD93C);
    for _ in 0..trials {
        let inputs = datapath_merge::dfg::gen::random_inputs(g, &mut rng);
        let expect = g.evaluate(&inputs).map_err(|e| e.to_string())?;
        let got = netlist.simulate(&inputs).map_err(|e| e.to_string())?;
        for (k, o) in g.outputs().iter().enumerate() {
            if got[k] != expect[o] {
                return Err(format!(
                    "netlist differs from design at output `{}`",
                    g.node(*o).name().unwrap_or("?")
                ));
            }
        }
    }
    Ok(())
}
