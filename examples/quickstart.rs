//! Quickstart: the paper's flagship `a*b + c*d` example through all three
//! flows, comparing carry-propagate adder counts, delay and area.
//!
//! Run with `cargo run --example quickstart`.

use datapath_merge::prelude::*;

fn main() {
    // Build the sum-of-products DFG the paper's introduction opens with.
    let mut g = Dfg::new();
    let a = g.input("a", 8);
    let b = g.input("b", 8);
    let c = g.input("c", 8);
    let d = g.input("d", 8);
    let m1 = g.op(OpKind::Mul, 16, &[(a, Signedness::Signed), (b, Signedness::Signed)]);
    let m2 = g.op(OpKind::Mul, 16, &[(c, Signedness::Signed), (d, Signedness::Signed)]);
    let s = g.op(OpKind::Add, 17, &[(m1, Signedness::Signed), (m2, Signedness::Signed)]);
    g.output("r", 17, s, Signedness::Signed);
    g.validate().expect("well-formed design");

    let lib = Library::synthetic_025um();
    let config = SynthConfig::default();

    println!("a*b + c*d, 8-bit signed operands\n");
    println!("{:<10} {:>9} {:>12} {:>10} {:>8}", "flow", "clusters", "delay (ns)", "area", "gates");
    for strategy in [MergeStrategy::None, MergeStrategy::Old, MergeStrategy::New] {
        let flow = run_flow(&g, strategy, &config).expect("synthesis");
        let timing = flow.netlist.longest_path(&lib);
        println!(
            "{:<10} {:>9} {:>12.3} {:>10.1} {:>8}",
            strategy.to_string(),
            flow.clustering.len(),
            timing.delay_ns,
            flow.netlist.area(&lib),
            flow.netlist.num_gates()
        );
    }

    // Prove the merged netlist is the same function, bit for bit.
    let flow = run_flow(&g, MergeStrategy::New, &config).expect("synthesis");
    let inputs = vec![
        BitVec::from_i64(8, -100),
        BitVec::from_i64(8, 37),
        BitVec::from_i64(8, 55),
        BitVec::from_i64(8, -4),
    ];
    let expected = g.evaluate(&inputs).expect("evaluates");
    let got = flow.netlist.simulate(&inputs).expect("simulates");
    let r = g.outputs()[0];
    println!(
        "\ncheck: -100*37 + 55*(-4) = {} (netlist agrees: {})",
        expected[&r].to_i64().expect("fits"),
        got[0] == expected[&r]
    );
    assert_eq!(got[0], expected[&r]);
    println!(
        "merged cluster pays one carry-propagate adder; unmerged pays {}.",
        run_flow(&g, MergeStrategy::None, &config).expect("synthesis").clustering.len()
    );
}
