//! Canonical structural form: a node-id- and name-independent hash plus a
//! byte codec for content-addressed caching.
//!
//! The synthesis service answers design requests from an on-disk artifact
//! store keyed by *structure*: two designs that differ only in node
//! creation order or in port names must hit the same cache entry, while
//! any semantic edit (an operator kind, a width, a constant value, an edge
//! attribute, the input/output interface shape) must produce a different
//! key. This module defines that key and the serialization behind it.
//!
//! # Canonical order
//!
//! The canonical index of every node is fixed by the design's *semantics*,
//! never by its node ids:
//!
//! 1. primary inputs, in declaration order (declaration order is
//!    semantic — it is the positional simulation interface);
//! 2. the interior cone of each primary output, outputs taken in
//!    declaration order, each explored by an iterative depth-first
//!    postorder that visits in-edges in ascending port order — so every
//!    node is placed after all of its transitive operands;
//! 3. the primary outputs themselves, in declaration order;
//! 4. any node unreachable from the outputs, appended last by the same
//!    postorder seeded from the unreached nodes in id order. (Dead nodes
//!    have no semantic identity to canonicalize by; full permutation
//!    invariance is guaranteed for the output-reachable cone, which is
//!    all that synthesis ever consumes.)
//!
//! # Canonical bytes and hash
//!
//! [`encode_canonical`] walks that order and writes, per node: a kind tag
//! (constants contribute their value bits, operators their [`OpKind`],
//! extensions their signedness — **names are never written**), the node
//! width, and the in-edges in port order as `(port, edge width, edge
//! signedness, canonical source index)` tuples; then the input and output
//! interface as canonical indices in declaration order. The
//! [`CanonicalForm::hash`] is a 128-bit FNV-1a over exactly those bytes,
//! rendered as `dp1-<32 hex digits>`.
//!
//! [`decode_canonical`] rebuilds a [`Dfg`] whose node ids *equal* the
//! canonical indices, with synthetic positional port names (`i0`, `i1`,
//! …, `o0`, …) — so the decoded graph of any two alpha-renamed designs is
//! bit-identical, and cluster/analysis artifacts expressed in canonical
//! indices transfer between them.

use std::fmt;

use dp_bitvec::{BitVec, Signedness};

use crate::graph::{Dfg, NodeId, NodeKind};
use crate::op::OpKind;

/// The canonical structural form of a design: the stable content hash and
/// the bijection between node ids and canonical indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalForm {
    /// Content hash over the canonical bytes: `dp1-` + 32 hex digits.
    pub hash: String,
    /// Canonical index → node id.
    pub order: Vec<NodeId>,
    /// Node id (dense index) → canonical index.
    pub rank: Vec<u32>,
}

impl CanonicalForm {
    /// The canonical index of `n`.
    pub fn rank_of(&self, n: NodeId) -> u32 {
        self.rank[n.index()]
    }
}

/// Errors from [`decode_canonical`]: the byte stream was not produced by
/// [`encode_canonical`] (or was corrupted in storage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonDecodeError {
    /// What was malformed.
    pub message: String,
    /// Byte offset at which decoding failed.
    pub offset: usize,
}

impl fmt::Display for CanonDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "canonical decode error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for CanonDecodeError {}

/// Computes the canonical order and content hash of `g`.
///
/// Invariant under node-id permutation (for the output-reachable cone) and
/// under renaming of input/output ports; sensitive to every semantic
/// attribute: kinds, widths, constant values, edge widths/signedness,
/// connectivity, and interface order.
pub fn canonical_form(g: &Dfg) -> CanonicalForm {
    let order = canonical_order(g);
    let mut rank = vec![0u32; g.num_nodes()];
    for (i, &n) in order.iter().enumerate() {
        rank[n.index()] = u32::try_from(i).expect("node count fits u32");
    }
    let bytes = encode_with(g, &order, &rank);
    CanonicalForm { hash: render_hash(fnv128(&bytes)), order, rank }
}

/// Serializes `g` into its canonical bytes (names excluded, nodes in
/// canonical order). [`canonical_form`]`.hash` is the FNV-1a-128 of
/// exactly this buffer.
pub fn encode_canonical(g: &Dfg) -> Vec<u8> {
    let form = canonical_form(g);
    encode_with(g, &form.order, &form.rank)
}

fn canonical_order(g: &Dfg) -> Vec<NodeId> {
    let n = g.num_nodes();
    let mut placed = vec![false; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    for &i in g.inputs() {
        if !placed[i.index()] {
            placed[i.index()] = true;
            order.push(i);
        }
    }
    // Outputs are roots: explore each driver cone, then append the output
    // nodes themselves after every cone is placed.
    let outputs: Vec<NodeId> = g.outputs().to_vec();
    let out_set: Vec<bool> = {
        let mut s = vec![false; n];
        for &o in &outputs {
            s[o.index()] = true;
        }
        s
    };
    for &o in &outputs {
        for e in g.node(o).in_edges() {
            place_cone(g, g.edge(*e).src(), &mut placed, &out_set, &mut order);
        }
    }
    for &o in &outputs {
        if !placed[o.index()] {
            placed[o.index()] = true;
            order.push(o);
        }
    }
    // Dead nodes (unreachable from any output), seeded in id order so the
    // appendix is at least deterministic for a fixed graph value.
    for i in 0..n {
        let node = NodeId::from_index(i);
        if !placed[i] {
            place_cone(g, node, &mut placed, &out_set, &mut order);
            if !placed[i] {
                // `node` is itself an Output (dead outputs cannot exist —
                // outputs are roots — but keep the walk total).
                placed[i] = true;
                order.push(node);
            }
        }
    }
    order
}

/// Iterative postorder from `root` over in-edges in port order, skipping
/// already-placed nodes and output nodes (outputs are appended separately).
fn place_cone(
    g: &Dfg,
    root: NodeId,
    placed: &mut [bool],
    out_set: &[bool],
    order: &mut Vec<NodeId>,
) {
    if placed[root.index()] || out_set[root.index()] {
        return;
    }
    // (node, next in-edge position to explore)
    let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
    let mut on_stack = vec![false; g.num_nodes()];
    on_stack[root.index()] = true;
    while let Some(&(node, pos)) = stack.last() {
        let ins = g.node(node).in_edges();
        if pos < ins.len() {
            if let Some(top) = stack.last_mut() {
                top.1 += 1;
            }
            let src = g.edge(ins[pos]).src();
            if !placed[src.index()] && !out_set[src.index()] && !on_stack[src.index()] {
                on_stack[src.index()] = true;
                stack.push((src, 0));
            }
        } else {
            stack.pop();
            on_stack[node.index()] = false;
            if !placed[node.index()] {
                placed[node.index()] = true;
                order.push(node);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Byte encoding. All integers are unsigned LEB128; the layout is:
//   magic "DFC1" | node_count | per node: kind-tag bytes, width,
//   in-degree, per in-edge (port, ewidth, sign, src rank) |
//   input_count, input ranks | output_count, output ranks
// ---------------------------------------------------------------------

const MAGIC: &[u8; 4] = b"DFC1";

const TAG_INPUT: u8 = 0;
const TAG_OUTPUT: u8 = 1;
const TAG_CONST: u8 = 2;
const TAG_EXT: u8 = 3;
const TAG_OP_ADD: u8 = 4;
const TAG_OP_SUB: u8 = 5;
const TAG_OP_NEG: u8 = 6;
const TAG_OP_MUL: u8 = 7;
const TAG_OP_SHL: u8 = 8;

fn sign_byte(s: Signedness) -> u8 {
    match s {
        Signedness::Unsigned => 0,
        Signedness::Signed => 1,
    }
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn encode_with(g: &Dfg, order: &[NodeId], rank: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + g.num_nodes() * 8 + g.num_edges() * 6);
    out.extend_from_slice(MAGIC);
    push_varint(&mut out, g.num_nodes() as u64);
    for &n in order {
        let node = g.node(n);
        match node.kind() {
            NodeKind::Input => out.push(TAG_INPUT),
            NodeKind::Output => out.push(TAG_OUTPUT),
            NodeKind::Const(v) => {
                out.push(TAG_CONST);
                push_varint(&mut out, v.width() as u64);
                // Value bits, LSB first, packed 8 per byte.
                let mut byte = 0u8;
                for i in 0..v.width() {
                    if v.bit(i) {
                        byte |= 1 << (i % 8);
                    }
                    if i % 8 == 7 {
                        out.push(byte);
                        byte = 0;
                    }
                }
                if v.width() % 8 != 0 {
                    out.push(byte);
                }
            }
            NodeKind::Extension(s) => {
                out.push(TAG_EXT);
                out.push(sign_byte(*s));
            }
            NodeKind::Op(op) => match op {
                OpKind::Add => out.push(TAG_OP_ADD),
                OpKind::Sub => out.push(TAG_OP_SUB),
                OpKind::Neg => out.push(TAG_OP_NEG),
                OpKind::Mul => out.push(TAG_OP_MUL),
                OpKind::Shl(k) => {
                    out.push(TAG_OP_SHL);
                    out.push(*k);
                }
            },
        }
        push_varint(&mut out, node.width() as u64);
        let ins = node.in_edges();
        push_varint(&mut out, ins.len() as u64);
        for &e in ins {
            let edge = g.edge(e);
            push_varint(&mut out, edge.dst_port() as u64);
            push_varint(&mut out, edge.width() as u64);
            out.push(sign_byte(edge.signedness()));
            push_varint(&mut out, u64::from(rank[edge.src().index()]));
        }
    }
    push_varint(&mut out, g.inputs().len() as u64);
    for &i in g.inputs() {
        push_varint(&mut out, u64::from(rank[i.index()]));
    }
    push_varint(&mut out, g.outputs().len() as u64);
    for &o in g.outputs() {
        push_varint(&mut out, u64::from(rank[o.index()]));
    }
    out
}

/// Rebuilds a graph from [`encode_canonical`] bytes. In the result, node
/// id `k` *is* canonical index `k`, and ports carry positional names
/// (`i0…`, `o0…`): the decode of any design equals the decode of every
/// design sharing its canonical hash.
///
/// # Errors
///
/// Returns [`CanonDecodeError`] on any malformed byte stream — truncated,
/// bad magic, dangling source references, or trailing garbage. Corrupted
/// store entries must surface as errors here, never as panics.
pub fn decode_canonical(bytes: &[u8]) -> Result<Dfg, CanonDecodeError> {
    let mut d = Decoder { bytes, pos: 0 };
    d.expect_magic()?;
    let n = d.varint()? as usize;
    if n > bytes.len() {
        // A node needs at least one byte; reject absurd counts before
        // attempting allocations sized by attacker-controlled data.
        return Err(d.err("node count exceeds input size"));
    }
    struct Rec {
        kind: RecKind,
        width: usize,
        ins: Vec<(usize, usize, Signedness, usize)>,
    }
    enum RecKind {
        Input,
        Output,
        Const(BitVec),
        Ext(Signedness),
        Op(OpKind),
    }
    let mut recs: Vec<Rec> = Vec::with_capacity(n);
    for k in 0..n {
        let tag = d.byte()?;
        let kind = match tag {
            TAG_INPUT => RecKind::Input,
            TAG_OUTPUT => RecKind::Output,
            TAG_CONST => {
                let width = d.varint()? as usize;
                if width == 0 || width > 1 << 20 {
                    return Err(d.err("constant width out of range"));
                }
                let nbytes = width.div_ceil(8);
                let raw = d.take(nbytes)?;
                let v = BitVec::from_fn(width, |i| raw[i / 8] >> (i % 8) & 1 == 1);
                RecKind::Const(v)
            }
            TAG_EXT => RecKind::Ext(d.sign()?),
            TAG_OP_ADD => RecKind::Op(OpKind::Add),
            TAG_OP_SUB => RecKind::Op(OpKind::Sub),
            TAG_OP_NEG => RecKind::Op(OpKind::Neg),
            TAG_OP_MUL => RecKind::Op(OpKind::Mul),
            TAG_OP_SHL => RecKind::Op(OpKind::Shl(d.byte()?)),
            _ => return Err(d.err("unknown node tag")),
        };
        let width = d.varint()? as usize;
        if width == 0 || width > 1 << 20 {
            return Err(d.err("node width out of range"));
        }
        let deg = d.varint()? as usize;
        if deg > 2 {
            return Err(d.err("in-degree out of range"));
        }
        let mut ins = Vec::with_capacity(deg);
        for _ in 0..deg {
            let port = d.varint()? as usize;
            let ew = d.varint()? as usize;
            if ew == 0 || ew > 1 << 20 {
                return Err(d.err("edge width out of range"));
            }
            let sign = d.sign()?;
            let src = d.varint()? as usize;
            if src >= k {
                return Err(d.err("edge source does not precede its reader"));
            }
            ins.push((port, ew, sign, src));
        }
        recs.push(Rec { kind, width, ins });
    }
    let num_inputs = d.varint()? as usize;
    let mut input_ranks = Vec::with_capacity(num_inputs);
    for _ in 0..num_inputs {
        input_ranks.push(d.varint()? as usize);
    }
    let num_outputs = d.varint()? as usize;
    let mut output_ranks = Vec::with_capacity(num_outputs);
    for _ in 0..num_outputs {
        output_ranks.push(d.varint()? as usize);
    }
    if d.pos != bytes.len() {
        return Err(d.err("trailing bytes after document"));
    }
    // Interface sanity: the canonical order places inputs first and
    // outputs last, each in declaration order.
    for (k, &r) in input_ranks.iter().enumerate() {
        if r != k || r >= n || !matches!(recs[r].kind, RecKind::Input) {
            return Err(d.err("input table does not match canonical layout"));
        }
    }
    for &r in &output_ranks {
        if r >= n || !matches!(recs[r].kind, RecKind::Output) {
            return Err(d.err("output table does not match canonical layout"));
        }
    }

    // Reconstruct in canonical order; every constructor below assigns ids
    // densely, so node id k == canonical index k by induction.
    let mut g = Dfg::with_capacity(n, recs.iter().map(|r| r.ins.len()).sum());
    let mut next_in = 0usize;
    let mut next_out = 0usize;
    for (k, rec) in recs.iter().enumerate() {
        let id = match &rec.kind {
            RecKind::Input => {
                if !rec.ins.is_empty() {
                    return Err(d.err("input node with in-edges"));
                }
                let id = g.input(format!("i{next_in}"), rec.width);
                next_in += 1;
                id
            }
            RecKind::Const(v) => {
                if !rec.ins.is_empty() || v.width() != rec.width {
                    return Err(d.err("malformed constant node"));
                }
                g.constant(v.clone())
            }
            RecKind::Ext(s) => {
                let &[(port, ew, es, src)] = rec.ins.as_slice() else {
                    return Err(d.err("extension node needs exactly one in-edge"));
                };
                if port != 0 {
                    return Err(d.err("extension in-edge on a non-zero port"));
                }
                g.extension(rec.width, *s, NodeId::from_index(src), ew, es)
            }
            RecKind::Output => {
                let &[(port, ew, es, src)] = rec.ins.as_slice() else {
                    return Err(d.err("output node needs exactly one in-edge"));
                };
                if port != 0 {
                    return Err(d.err("output in-edge on a non-zero port"));
                }
                let id = g.output_with_edge(
                    format!("o{next_out}"),
                    rec.width,
                    NodeId::from_index(src),
                    ew,
                    es,
                );
                next_out += 1;
                id
            }
            RecKind::Op(op) => {
                if rec.ins.len() != op.arity() {
                    return Err(d.err("operator in-degree does not match arity"));
                }
                let id = g.op_unconnected(*op, rec.width);
                for (pos, &(port, ew, es, src)) in rec.ins.iter().enumerate() {
                    if port != pos {
                        return Err(d.err("operator ports not dense in port order"));
                    }
                    g.connect(NodeId::from_index(src), id, port, ew, es);
                }
                id
            }
        };
        if id.index() != k {
            return Err(d.err("canonical index mismatch during rebuild"));
        }
    }
    if output_ranks.len() != g.outputs().len() || input_ranks.len() != g.inputs().len() {
        return Err(d.err("interface table does not cover all ports"));
    }
    if g.outputs().iter().map(|o| o.index()).ne(output_ranks.iter().copied()) {
        return Err(d.err("output declaration order does not match canonical order"));
    }
    Ok(g)
}

struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Decoder<'_> {
    fn err(&self, message: &str) -> CanonDecodeError {
        CanonDecodeError { message: message.to_string(), offset: self.pos }
    }

    fn byte(&mut self) -> Result<u8, CanonDecodeError> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&[u8], CanonDecodeError> {
        if self.pos + n > self.bytes.len() {
            return Err(self.err("unexpected end of input"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn expect_magic(&mut self) -> Result<(), CanonDecodeError> {
        if self.take(4)? != MAGIC {
            return Err(CanonDecodeError { message: "bad magic".to_string(), offset: 0 });
        }
        Ok(())
    }

    fn varint(&mut self) -> Result<u64, CanonDecodeError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(self.err("varint too long"))
    }

    fn sign(&mut self) -> Result<Signedness, CanonDecodeError> {
        match self.byte()? {
            0 => Ok(Signedness::Unsigned),
            1 => Ok(Signedness::Signed),
            _ => Err(self.err("bad signedness byte")),
        }
    }
}

// ---------------------------------------------------------------------
// 128-bit FNV-1a. Hand-rolled (the workspace is dependency-free); 128
// bits keeps structural-key collisions out of reach for any store size,
// and the differential audit on cache hits backstops even that.
// ---------------------------------------------------------------------

fn fnv128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

fn render_hash(h: u128) -> String {
    format!("dp1-{h:032x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_bitvec::Signedness::*;

    fn fig_like() -> Dfg {
        let mut g = Dfg::new();
        let a = g.input("A", 8);
        let b = g.input("B", 8);
        let c = g.input("C", 9);
        let n1 = g.op(OpKind::Add, 7, &[(a, Signed), (b, Signed)]);
        let k = g.constant(BitVec::from_u64(4, 5));
        let n2 = g.op(OpKind::Mul, 13, &[(n1, Signed), (k, Unsigned)]);
        let n3 = g.op(OpKind::Add, 13, &[(n2, Signed), (c, Signed)]);
        g.output("R", 13, n3, Signed);
        g
    }

    #[test]
    fn hash_is_stable_and_prefixed() {
        let g = fig_like();
        let f1 = canonical_form(&g);
        let f2 = canonical_form(&g);
        assert_eq!(f1, f2);
        assert!(f1.hash.starts_with("dp1-"));
        assert_eq!(f1.hash.len(), 4 + 32);
    }

    #[test]
    fn alpha_renaming_preserves_hash_and_decode() {
        let g = fig_like();
        let mut r = Dfg::new();
        let a = r.input("x_alpha", 8);
        let b = r.input("y_beta", 8);
        let c = r.input("z_gamma", 9);
        let n1 = r.op(OpKind::Add, 7, &[(a, Signed), (b, Signed)]);
        let k = r.constant(BitVec::from_u64(4, 5));
        let n2 = r.op(OpKind::Mul, 13, &[(n1, Signed), (k, Unsigned)]);
        let n3 = r.op(OpKind::Add, 13, &[(n2, Signed), (c, Signed)]);
        r.output("result", 13, n3, Signed);
        assert_eq!(canonical_form(&g).hash, canonical_form(&r).hash);
        let dg = decode_canonical(&encode_canonical(&g)).unwrap();
        let dr = decode_canonical(&encode_canonical(&r)).unwrap();
        assert_eq!(format!("{dg:?}"), format!("{dr:?}"));
    }

    #[test]
    fn permuted_construction_order_preserves_hash() {
        let g = fig_like();
        // Same design, interleaved construction: constants and ops created
        // in a different id order (inputs keep declaration order — that is
        // the simulation interface).
        let mut p = Dfg::new();
        let a = p.input("A", 8);
        let b = p.input("B", 8);
        let c = p.input("C", 9);
        let k = p.constant(BitVec::from_u64(4, 5));
        let n1 = p.op(OpKind::Add, 7, &[(a, Signed), (b, Signed)]);
        let n2 = p.op(OpKind::Mul, 13, &[(n1, Signed), (k, Unsigned)]);
        let n3 = p.op(OpKind::Add, 13, &[(n2, Signed), (c, Signed)]);
        p.output("R", 13, n3, Signed);
        assert_eq!(canonical_form(&g).hash, canonical_form(&p).hash);
    }

    #[test]
    fn semantic_edits_change_the_hash() {
        let base = canonical_form(&fig_like()).hash;
        let build = |op: OpKind, width: usize, cval: u64, out_w: usize| {
            let mut g = Dfg::new();
            let a = g.input("A", 8);
            let b = g.input("B", 8);
            let c = g.input("C", 9);
            let n1 = g.op(op, 7, &[(a, Signed), (b, Signed)]);
            let k = g.constant(BitVec::from_u64(4, cval));
            let n2 = g.op(OpKind::Mul, width, &[(n1, Signed), (k, Unsigned)]);
            let n3 = g.op(OpKind::Add, 13, &[(n2, Signed), (c, Signed)]);
            g.output("R", out_w, n3, Signed);
            canonical_form(&g).hash
        };
        assert_ne!(build(OpKind::Sub, 13, 5, 13), base, "op kind must matter");
        assert_ne!(build(OpKind::Add, 12, 5, 13), base, "node width must matter");
        assert_ne!(build(OpKind::Add, 13, 6, 13), base, "constant value must matter");
        assert_ne!(build(OpKind::Add, 13, 5, 12), base, "output width must matter");
        assert_eq!(build(OpKind::Add, 13, 5, 13), base, "identical rebuild must match");
    }

    #[test]
    fn decode_round_trips_semantics() {
        let g = fig_like();
        let decoded = decode_canonical(&encode_canonical(&g)).unwrap();
        decoded.validate().unwrap();
        assert_eq!(decoded.num_nodes(), g.num_nodes());
        assert_eq!(decoded.num_edges(), g.num_edges());
        assert_eq!(canonical_form(&decoded).hash, canonical_form(&g).hash);
        // Same function, positionally.
        let inputs =
            vec![BitVec::from_i64(8, -100), BitVec::from_i64(8, 55), BitVec::from_i64(9, 17)];
        let want = g.evaluate(&inputs).unwrap();
        let got = decoded.evaluate(&inputs).unwrap();
        let want_r = &want[&g.outputs()[0]];
        let got_r = &got[&decoded.outputs()[0]];
        assert_eq!(want_r, got_r);
        // Names are positional in the decode.
        assert_eq!(decoded.node(decoded.inputs()[0]).name(), Some("i0"));
        assert_eq!(decoded.node(decoded.outputs()[0]).name(), Some("o0"));
    }

    #[test]
    fn corrupt_bytes_decode_to_errors_not_panics() {
        let bytes = encode_canonical(&fig_like());
        // Truncations at every prefix length.
        for len in 0..bytes.len() {
            let _ = decode_canonical(&bytes[..len]);
        }
        // Single-byte corruptions.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x41;
            if let Ok(g) = decode_canonical(&bad) {
                // A corruption that still decodes must at least be a valid
                // graph value (the store's differential audit catches the
                // rest).
                let _ = g.validate();
            }
        }
        assert!(decode_canonical(b"DFC1").is_err());
        assert!(decode_canonical(b"").is_err());
        assert!(decode_canonical(b"XXXX\x00").is_err());
    }

    #[test]
    fn dead_nodes_are_deterministic_and_reachable_cone_invariant() {
        let mut g = fig_like();
        let extra = g.input("dead_in", 3);
        let _dead = g.op(OpKind::Neg, 3, &[(extra, Unsigned)]);
        let f = canonical_form(&g);
        assert_eq!(f.order.len(), g.num_nodes());
        assert_eq!(canonical_form(&g), f);
        let decoded = decode_canonical(&encode_canonical(&g)).unwrap();
        assert_eq!(canonical_form(&decoded).hash, f.hash);
    }
}
