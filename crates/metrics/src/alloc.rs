//! Allocation-statistics probe indirection.
//!
//! dp-metrics stays `forbid(unsafe_code)` and dependency-free, so it
//! cannot host a `#[global_allocator]` itself. Instead it defines the
//! *interface*: a binary that installs a counting allocator (dp-obs's
//! `CountingAlloc`) registers an [`AllocProbe`] once at startup, and
//! every [`crate::Recorder`] running at [`crate::Level::Full`] then
//! snapshots it around each span to attribute heap traffic per phase.
//!
//! The probe reports **thread-local** statistics: each worker thread in
//! a `--jobs N` pool sees only its own allocations, which is what makes
//! per-span deltas independent of the job count.

use std::sync::OnceLock;

/// A point-in-time snapshot of one thread's allocation counters, plus
/// the per-span deltas derived from two snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Total bytes ever allocated on this thread (monotonic).
    pub alloc_bytes: u64,
    /// Total allocation calls on this thread (monotonic).
    pub alloc_count: u64,
    /// Bytes currently live (allocated minus freed) on this thread.
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since the watermark was last
    /// reset with [`AllocProbe::set_peak`].
    pub peak_live_bytes: u64,
}

/// Source of thread-local allocation statistics, registered once per
/// process by the binary that owns the counting global allocator.
pub trait AllocProbe: Sync {
    /// Current counters for the calling thread.
    fn stats(&self) -> AllocStats;
    /// Resets the calling thread's peak-live watermark to `to`
    /// (normally the current `live_bytes`, when a span opens).
    fn set_peak(&self, to: u64);
}

static PROBE: OnceLock<&'static dyn AllocProbe> = OnceLock::new();

/// Registers the process-wide allocation probe. The first call wins;
/// returns `false` if a probe was already installed.
pub fn install_alloc_probe(probe: &'static dyn AllocProbe) -> bool {
    PROBE.set(probe).is_ok()
}

/// The installed probe, if any. `None` means per-span allocation fields
/// are omitted everywhere — a deterministic, per-process property.
pub fn alloc_probe() -> Option<&'static dyn AllocProbe> {
    PROBE.get().copied()
}
