//! Synthesis of one cluster from its sum-of-addends normal form.

use dp_bitvec::Signedness;
use dp_merge::{AddendKind, SignalRef, SumOfAddends};
use dp_netlist::{NetId, Netlist};

use crate::adders::{carry_select_add, kogge_stone_add, reduce_to_two_rows, ripple_carry_add};
use crate::product::{emit_product, emit_signal, Operand};
use crate::{AdderKind, Columns, SignalTable, SynthConfig};

/// Per-cluster synthesis statistics — the QoR counters one call to
/// [`synthesize_sum_with`] contributes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SumStats {
    /// Carry-save reduction stages performed (0 when the columns already
    /// fit in two rows, or for wiring-only sums).
    pub csa_stages: usize,
    /// Whether a final carry-propagate adder was instantiated (wiring-only
    /// sums pay none).
    pub used_cpa: bool,
}

/// Synthesizes a sum of addends into gates, returning the output bits
/// (width `sum.width`, least significant first).
///
/// `signals` maps every external source node referenced by the sum to its
/// already-synthesized bit nets (the full source width; the sum taps the
/// low bits it needs).
///
/// A sum consisting of a single non-negated signal addend degenerates to
/// pure wiring — no gates are emitted (this is what extension-node
/// clusters and output-side resizes cost: nothing).
///
/// # Panics
///
/// Panics if a referenced source node is missing from `signals`.
pub fn synthesize_sum(
    nl: &mut Netlist,
    sum: &SumOfAddends,
    signals: &SignalTable,
    config: &SynthConfig,
) -> Vec<NetId> {
    synthesize_sum_with(nl, sum, signals, config).0
}

/// [`synthesize_sum`] plus the cluster's [`SumStats`].
///
/// # Panics
///
/// Panics if a referenced source node is missing from `signals`.
pub fn synthesize_sum_with(
    nl: &mut Netlist,
    sum: &SumOfAddends,
    signals: &SignalTable,
    config: &SynthConfig,
) -> (Vec<NetId>, SumStats) {
    let operand_of = |nl: &mut Netlist, s: &SignalRef| -> Operand {
        let source =
            signals.get(s.source).expect("every signal source is synthesized before its readers");
        let live = s.bits.min(source.len());
        let _ = nl;
        Operand { bits: source[..live].to_vec(), signedness: s.signedness }
    };

    // Degenerate case: one positive unshifted signal addend is wiring.
    if sum.addends.len() == 1 && !sum.addends[0].negated && sum.addends[0].shift == 0 {
        if let AddendKind::Signal(s) = sum.addends[0].kind {
            let op = operand_of(nl, &s);
            let bits = (0..sum.width).map(|k| op_bit(nl, &op, k)).collect();
            return (bits, SumStats::default());
        }
    }

    let mut cols = Columns::new(sum.width);
    for addend in &sum.addends {
        match addend.kind {
            AddendKind::Signal(s) => {
                let op = operand_of(nl, &s);
                emit_signal(
                    nl,
                    &mut cols,
                    &op,
                    addend.negated,
                    addend.shift,
                    config.sign_ext_compression,
                );
            }
            AddendKind::Product(s, t) => {
                let a = operand_of(nl, &s);
                let b = operand_of(nl, &t);
                emit_product(
                    nl,
                    &mut cols,
                    &a,
                    &b,
                    addend.negated,
                    addend.shift,
                    config.sign_ext_compression,
                );
            }
        }
    }
    let (ra, rb, csa_stages) = reduce_to_two_rows(nl, cols, config.reduction);
    let zero = nl.const0();
    let bits = match config.adder {
        AdderKind::Ripple => ripple_carry_add(nl, &ra, &rb, zero),
        AdderKind::CarrySelect => carry_select_add(nl, &ra, &rb, zero),
        AdderKind::KoggeStone => kogge_stone_add(nl, &ra, &rb, zero),
    };
    (bits, SumStats { csa_stages, used_cpa: true })
}

/// Bit `k` of an operand (live bits, then fill per discipline).
fn op_bit(nl: &mut Netlist, op: &Operand, k: usize) -> NetId {
    if k < op.bits.len() {
        op.bits[k]
    } else if op.bits.is_empty() || op.signedness == Signedness::Unsigned {
        nl.const0()
    } else {
        *op.bits.last().expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_analysis::info_content;
    use dp_bitvec::{BitVec, Signedness::*};
    use dp_dfg::{Dfg, OpKind};
    use dp_merge::{cluster_max, linearize_cluster};

    /// End-to-end check of one cluster: build a DFG, cluster it, hand the
    /// inputs to the netlist, synthesize the single cluster and compare
    /// against the DFG evaluator.
    #[test]
    fn single_cluster_matches_evaluator() {
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let b = g.input("b", 4);
        let c = g.input("c", 4);
        let m = g.op(OpKind::Mul, 8, &[(a, Signed), (b, Signed)]);
        let s = g.op(OpKind::Sub, 9, &[(m, Signed), (c, Signed)]);
        g.output("o", 9, s, Signed);
        let (clustering, _) = cluster_max(&mut g);
        assert_eq!(clustering.len(), 1);
        let ic = info_content(&g);
        let sum = linearize_cluster(&g, &clustering.clusters[0], &ic).unwrap();

        let mut nl = Netlist::new();
        let mut signals = SignalTable::default();
        signals.insert(a, nl.input("a", 4));
        signals.insert(b, nl.input("b", 4));
        signals.insert(c, nl.input("c", 4));
        let out = synthesize_sum(&mut nl, &sum, &signals, &SynthConfig::default());
        nl.output("o", out);
        nl.check().unwrap();

        for x in [-8i64, -3, 0, 5, 7] {
            for y in [-8i64, -1, 0, 2, 7] {
                for z in [-8i64, 0, 7] {
                    let inputs = vec![
                        BitVec::from_i64(4, x),
                        BitVec::from_i64(4, y),
                        BitVec::from_i64(4, z),
                    ];
                    let expect = g.evaluate(&inputs).unwrap();
                    let got = nl.simulate(&inputs).unwrap();
                    assert_eq!(got[0].to_i64(), expect[&g.outputs()[0]].to_i64(), "{x}*{y}-{z}");
                }
            }
        }
    }

    #[test]
    fn wiring_shortcut_emits_no_gates() {
        // An extension-node cluster: sign-extend a 4-bit input to 8 bits.
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let ext = g.extension(8, Signed, a, 4, Unsigned);
        g.output("o", 8, ext, Unsigned);
        let (clustering, _) = cluster_max(&mut g);
        assert_eq!(clustering.len(), 1);
        let ic = info_content(&g);
        let sum = linearize_cluster(&g, &clustering.clusters[0], &ic).unwrap();

        let mut nl = Netlist::new();
        let mut signals = SignalTable::default();
        signals.insert(a, nl.input("a", 4));
        let out = synthesize_sum(&mut nl, &sum, &signals, &SynthConfig::default());
        nl.output("o", out);
        assert_eq!(nl.num_gates(), 0, "extension is wiring, not logic");
        let got = nl.simulate(&[BitVec::from_i64(4, -3)]).unwrap();
        assert_eq!(got[0].to_i64(), Some(-3));
    }
}
