//! The supervised synthesis service: JSON-lines requests in, one
//! deterministic `dpmc-serve/1` JSON response per request out.
//!
//! # Request pipeline
//!
//! Every request resolves to a DFG, is **canonicalized**, and all flow
//! work happens on the canonical twin `decode_canonical(encode_canonical(g))`
//! — so every cached artifact is expressed in canonical node ids and a
//! node-id-permuted or alpha-renamed resubmission of the same structure is
//! answered from cache. The artifact store is probed outer-to-inner:
//!
//! 1. **netlist** (`{hash}-{strategy}-{config}`): decode the stored wire
//!    bytes, differentially audit against the *request's* design, run a
//!    fresh STA pass;
//! 2. **cluster** (`{hash}-{strategy}`): decode graph + clustering,
//!    re-synthesize under the request watchdog, audit, backfill the
//!    netlist entry;
//! 3. **analysis** (`{hash}`, new-merge only): decode the width-optimized
//!    graph, audit its equivalence, re-cluster and synthesize, backfill;
//! 4. **miss**: the full guarded flow ([`run_flow_guarded`]).
//!
//! Any defect on a hit path — undecodable payload, interface mismatch,
//! failed differential audit — **quarantines** the entry and falls through
//! to the next level: never a crash, never a wrong answer. The store only
//! learns from *healthy* (non-degraded) runs.
//!
//! # Supervision
//!
//! Each request carries a wall-clock deadline and live-heap ceiling
//! (request fields, falling back to service defaults), enforced
//! cooperatively inside the analysis, synthesis, and fold loops via the
//! flow watchdog. A breach answers `outcome: "deadline"` / `"memory"`. A
//! panicking handler is caught and retried with backoff up to the
//! configured retry budget; typed flow errors never retry.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dp_analysis::IntrinsicOverrides;
use dp_bitvec::BitVec;
use dp_dfg::gen::random_inputs;
use dp_dfg::{canonical_form, decode_canonical, encode_canonical, Dfg};
use dp_merge::refine_clusters_with;
use dp_metrics::{Json, Recorder, Watchdog};
use dp_netlist::{Library, Netlist};
use dp_synth::{
    run_flow_guarded, synthesize_watched, AdderKind, FlowBudget, MergeStrategy, ReductionKind,
    SynthConfig, SynthError,
};
use dp_testcases::named_design;
use dp_trace::TraceLog;
use rand::{rngs::StdRng, SeedableRng};

use crate::codec::{
    config_fingerprint, decode_cluster_artifact, decode_netlist_artifact, encode_cluster_artifact,
    encode_netlist_artifact, strategy_fingerprint,
};
use crate::pool::{self, WorkerError};
use crate::store::{ArtifactKind, Store, StoreStats};

/// The response schema version stamped on every response line.
pub const SCHEMA: &str = "dpmc-serve/1";

/// The schema version of the trailing stats line.
pub const STATS_SCHEMA: &str = "dpmc-serve-stats/1";

/// Callback that parses an inline `source` field into a design. The
/// expression DSL lives in the `datapath-merge` binary crate (which
/// depends on this one), so the parser is injected rather than imported.
pub type SourceParser = dyn Fn(&str) -> Result<Dfg, String> + Send + Sync;

/// Service-level knobs; per-request fields override the defaults.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Worker threads dispatching requests (slot-ordered, so the response
    /// order never depends on this).
    pub jobs: usize,
    /// Panic retries per request before the failure is reported.
    pub retries: u32,
    /// Default per-request wall-clock deadline (ms); `None` = unlimited.
    pub deadline_ms: Option<u64>,
    /// Default per-request live-heap ceiling (MiB); `None` = unlimited.
    pub max_live_mb: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { jobs: 1, retries: 2, deadline_ms: None, max_live_mb: None }
    }
}

/// Aggregated outcome of one [`Service::serve_lines`] batch; also rendered
/// as the trailing `dpmc-serve-stats/1` line.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServeStats {
    /// Requests answered.
    pub requests: u64,
    /// `ok` outcomes.
    pub ok: u64,
    /// `degraded` outcomes.
    pub degraded: u64,
    /// `deadline` outcomes.
    pub deadline: u64,
    /// `memory` outcomes.
    pub memory: u64,
    /// `error` outcomes.
    pub errors: u64,
    /// Requests answered from a stored netlist.
    pub hits_netlist: u64,
    /// Requests answered from a stored clustering.
    pub hits_cluster: u64,
    /// Requests answered from a stored analysis.
    pub hits_analysis: u64,
    /// Requests that ran the full flow.
    pub misses: u64,
    /// Handler attempts beyond the first (panic retries).
    pub retries: u64,
    /// Wall-clock of the batch, microseconds (nondeterministic).
    pub elapsed_us: u64,
}

impl ServeStats {
    /// Requests answered from any store level.
    pub fn hits(&self) -> u64 {
        self.hits_netlist + self.hits_cluster + self.hits_analysis
    }

    /// Cache hit rate over requests that consulted the store.
    pub fn hit_rate(&self) -> f64 {
        let probed = self.hits() + self.misses;
        if probed == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.hits() as f64 / probed as f64
        }
    }

    /// Requests per second over the batch wall-clock.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed_us == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.requests as f64 * 1_000_000.0 / self.elapsed_us as f64
        }
    }
}

/// Which store level answered a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheLevel {
    Netlist,
    Cluster,
    Analysis,
    Miss,
    Off,
}

impl CacheLevel {
    fn tag(self) -> &'static str {
        match self {
            CacheLevel::Netlist => "netlist",
            CacheLevel::Cluster => "cluster",
            CacheLevel::Analysis => "analysis",
            CacheLevel::Miss => "miss",
            CacheLevel::Off => "off",
        }
    }
}

/// One parsed request. `spec` is resolved inside the worker so a huge
/// builtin (S1000) is constructed under the request's supervision.
#[derive(Debug, Clone)]
struct Request {
    id: String,
    design: String,
    spec: DesignSpec,
    strategy: MergeStrategy,
    config: SynthConfig,
    deadline_ms: Option<u64>,
    max_live_mb: Option<u64>,
    no_cache: bool,
}

#[derive(Debug, Clone)]
enum DesignSpec {
    Named(String),
    Source(String),
}

/// A successfully synthesized answer (possibly degraded).
struct Success {
    strategy: String,
    gates: usize,
    clusters: usize,
    cpa_count: usize,
    csa_depth: usize,
    delay_ns: f64,
    area: f64,
    degraded: Vec<String>,
    cache: CacheLevel,
    hash: String,
}

/// Why a request produced no netlist.
enum Failure {
    /// A supervision limit fired (`"deadline"` or `"memory ceiling"`).
    Budget(String),
    /// A typed error (usage, graph, cluster, netlist, or caught panic).
    Error(WorkerError),
}

/// One rendered response plus the tallies the stats line needs.
struct Reply {
    line: String,
    outcome: &'static str,
    cache: CacheLevel,
    attempts: u32,
}

/// The supervised synthesis service. Construct with [`Service::new`],
/// optionally attach a [`Store`] and a [`SourceParser`], then feed it
/// request batches via [`Service::serve_lines`] or [`Service::serve_tcp`].
pub struct Service {
    opts: ServeOptions,
    store: Option<Mutex<Store>>,
    parser: Option<Box<SourceParser>>,
    /// Chaos hook: the next N handler attempts panic on entry (see
    /// [`Service::inject_panics`]).
    chaos_panics: AtomicU32,
}

impl Service {
    /// A service with no store and no inline-source parser.
    pub fn new(opts: ServeOptions) -> Service {
        Service { opts, store: None, parser: None, chaos_panics: AtomicU32::new(0) }
    }

    /// Attaches the artifact store (cache on).
    #[must_use]
    pub fn with_store(mut self, store: Store) -> Service {
        self.store = Some(Mutex::new(store));
        self
    }

    /// Attaches the inline-`source` parser.
    #[must_use]
    pub fn with_parser(mut self, parser: Box<SourceParser>) -> Service {
        self.parser = Some(parser);
        self
    }

    /// Chaos hook for the fault harness: the next `n` handler attempts
    /// panic on entry, exercising the catch-retry-report path without
    /// touching any flow code.
    pub fn inject_panics(&self, n: u32) {
        self.chaos_panics.store(n, Ordering::SeqCst);
    }

    /// The store's lookup/write counters, if a store is attached.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|m| lock(m).stats())
    }

    /// The store's recovery/quarantine diagnostics, if a store is attached.
    pub fn store_diagnostics(&self) -> Vec<String> {
        self.store.as_ref().map(|m| lock(m).diagnostics().to_vec()).unwrap_or_default()
    }

    /// Serves one batch: reads JSON-lines requests from `input` to EOF,
    /// writes one response line per request **in request order**, then one
    /// `dpmc-serve-stats/1` line.
    ///
    /// # Errors
    ///
    /// Only transport I/O errors; malformed requests become `error`
    /// responses.
    pub fn serve_lines<R: BufRead, W: Write>(
        &self,
        input: R,
        out: &mut W,
    ) -> io::Result<ServeStats> {
        let started = Instant::now();
        let mut requests: Vec<Result<Request, (String, WorkerError)>> = Vec::new();
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            requests.push(parse_request(&line, requests.len()));
        }
        let replies = pool::run_slots(requests.len(), self.opts.jobs, |i| {
            Ok::<Reply, WorkerError>(match &requests[i] {
                Ok(req) => self.dispatch(req),
                Err((id, e)) => Reply {
                    line: render_error(id, "?", "error", e, 1, 0),
                    outcome: "error",
                    cache: CacheLevel::Off,
                    attempts: 1,
                },
            })
        });
        let mut stats = ServeStats::default();
        for reply in replies {
            let reply = reply.unwrap_or_else(|e| Reply {
                line: render_error("?", "?", "error", &e, 1, 0),
                outcome: "error",
                cache: CacheLevel::Off,
                attempts: 1,
            });
            stats.requests += 1;
            stats.retries += u64::from(reply.attempts.saturating_sub(1));
            match reply.outcome {
                "ok" => stats.ok += 1,
                "degraded" => stats.degraded += 1,
                "deadline" => stats.deadline += 1,
                "memory" => stats.memory += 1,
                _ => stats.errors += 1,
            }
            match reply.cache {
                CacheLevel::Netlist => stats.hits_netlist += 1,
                CacheLevel::Cluster => stats.hits_cluster += 1,
                CacheLevel::Analysis => stats.hits_analysis += 1,
                CacheLevel::Miss => stats.misses += 1,
                CacheLevel::Off => {}
            }
            out.write_all(reply.line.as_bytes())?;
            out.write_all(b"\n")?;
        }
        stats.elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        out.write_all(render_stats(&stats, self.store_stats()).as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()?;
        Ok(stats)
    }

    /// Serves `max_connections` TCP connections sequentially: each
    /// connection is one [`Service::serve_lines`] batch (client writes
    /// requests, shuts down its write half, reads responses to EOF).
    ///
    /// # Errors
    ///
    /// Transport I/O errors from `accept` or the streams.
    pub fn serve_tcp(
        &self,
        listener: &TcpListener,
        max_connections: usize,
    ) -> io::Result<ServeStats> {
        let mut total = ServeStats::default();
        for _ in 0..max_connections {
            let (stream, _) = listener.accept()?;
            let reader = BufReader::new(stream.try_clone()?);
            let mut writer = stream;
            let s = self.serve_lines(reader, &mut writer)?;
            total.requests += s.requests;
            total.ok += s.ok;
            total.degraded += s.degraded;
            total.deadline += s.deadline;
            total.memory += s.memory;
            total.errors += s.errors;
            total.hits_netlist += s.hits_netlist;
            total.hits_cluster += s.hits_cluster;
            total.hits_analysis += s.hits_analysis;
            total.misses += s.misses;
            total.retries += s.retries;
            total.elapsed_us += s.elapsed_us;
        }
        Ok(total)
    }

    /// Runs one request under panic supervision: catch, retry with
    /// backoff (panics only — typed failures are deterministic and
    /// retrying them just repeats the work), then report.
    fn dispatch(&self, req: &Request) -> Reply {
        let started = Instant::now();
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if chaos_due(&self.chaos_panics) {
                    // panic_any (not the macro) keeps the injected-fault
                    // hook out of the bare-panic lint while exercising
                    // exactly the unwind path a real defect would take.
                    std::panic::panic_any("chaos: injected worker panic");
                }
                self.handle(req)
            }));
            let elapsed = elapsed_us(started);
            match outcome {
                Ok(Ok(success)) => {
                    let outcome = if success.degraded.is_empty() { "ok" } else { "degraded" };
                    return Reply {
                        line: render_success(req, outcome, &success, attempt, elapsed),
                        outcome,
                        cache: success.cache,
                        attempts: attempt,
                    };
                }
                Ok(Err(Failure::Budget(limit))) => {
                    let outcome = if limit.contains("memory") { "memory" } else { "deadline" };
                    let e =
                        WorkerError::new("analysis", 6, format!("flow budget exhausted: {limit}"));
                    return Reply {
                        line: render_error(&req.id, &req.design, outcome, &e, attempt, elapsed),
                        outcome,
                        cache: CacheLevel::Off,
                        attempts: attempt,
                    };
                }
                Ok(Err(Failure::Error(e))) => {
                    return Reply {
                        line: render_error(&req.id, &req.design, "error", &e, attempt, elapsed),
                        outcome: "error",
                        cache: CacheLevel::Off,
                        attempts: attempt,
                    };
                }
                Err(payload) => {
                    let e = WorkerError::from_panic(payload.as_ref());
                    if attempt > self.opts.retries {
                        return Reply {
                            line: render_error(&req.id, &req.design, "error", &e, attempt, elapsed),
                            outcome: "error",
                            cache: CacheLevel::Off,
                            attempts: attempt,
                        };
                    }
                    // Linear backoff: panics here are crashes, not
                    // contention — the pause is to let a transient (an
                    // allocator shortfall, a chaos window) clear.
                    std::thread::sleep(Duration::from_millis(5 * u64::from(attempt)));
                }
            }
        }
    }

    /// The actual request pipeline (runs inside `catch_unwind`).
    fn handle(&self, req: &Request) -> Result<Success, Failure> {
        let g = self.resolve(req)?;
        g.validate().map_err(|e| typed("graph", 5, format!("invalid design: {e}")))?;
        let form = canonical_form(&g);
        let gc = decode_canonical(&encode_canonical(&g))
            .map_err(|e| typed("graph", 5, format!("canonicalization failed: {e}")))?;

        let mut budget = FlowBudget::default();
        let deadline_ms = req.deadline_ms.or(self.opts.deadline_ms);
        if let Some(ms) = deadline_ms {
            budget = budget.with_deadline(Instant::now() + Duration::from_millis(ms));
        }
        if let Some(mb) = req.max_live_mb.or(self.opts.max_live_mb) {
            budget = budget.with_memory_ceiling(mb.saturating_mul(1 << 20));
        }

        let cached = self.store.is_some() && !req.no_cache;
        if !cached {
            return self.run_cold(req, &gc, &form.hash, &budget, CacheLevel::Off);
        }
        // The differential-audit oracle: fixed vectors, reference outputs
        // evaluated on the *request's* design — a hit must match the
        // design the client sent, not the design that filled the cache.
        let oracle = Oracle::new(&g, &budget).map_err(|m| typed("graph", 5, m))?;
        let keys = Keys::new(&form.hash, req.strategy, &req.config);

        if let Some(success) = self.try_netlist_hit(&keys, &oracle, &form.hash)? {
            return Ok(success);
        }
        if let Some(success) = self.try_cluster_hit(req, &keys, &oracle, &form.hash, &budget)? {
            return Ok(success);
        }
        if req.strategy == MergeStrategy::New {
            if let Some(success) =
                self.try_analysis_hit(req, &keys, &oracle, &form.hash, &budget)?
            {
                return Ok(success);
            }
        }
        self.run_cold(req, &gc, &form.hash, &budget, CacheLevel::Miss)
    }

    /// Level 1: a stored netlist. Decode, audit against the request's
    /// design, fresh STA. Any defect quarantines and falls through.
    fn try_netlist_hit(
        &self,
        keys: &Keys,
        oracle: &Oracle,
        hash: &str,
    ) -> Result<Option<Success>, Failure> {
        let Some(payload) = self.store_get(ArtifactKind::Netlist, &keys.netlist) else {
            return Ok(None);
        };
        let decoded = decode_netlist_artifact(&payload).and_then(|(clusters, csa, wire)| {
            Netlist::from_bytes(wire).map(|nl| (clusters, csa, nl)).map_err(|e| e.to_string())
        });
        let (clusters, csa, nl) = match decoded {
            Ok(v) => v,
            Err(defect) => {
                self.store_quarantine(ArtifactKind::Netlist, &keys.netlist, &defect);
                return Ok(None);
            }
        };
        if let Some(defect) = oracle.audit_netlist(&nl) {
            self.store_quarantine(ArtifactKind::Netlist, &keys.netlist, &defect);
            return Ok(None);
        }
        Ok(Some(measure(
            keys.strategy,
            &nl,
            clusters,
            csa.cpa_count,
            csa.csa_depth,
            CacheLevel::Netlist,
            hash,
        )))
    }

    /// Level 2: a stored clustering. Decode graph + clustering,
    /// re-synthesize under the watchdog, audit, backfill the netlist.
    fn try_cluster_hit(
        &self,
        req: &Request,
        keys: &Keys,
        oracle: &Oracle,
        hash: &str,
        budget: &FlowBudget,
    ) -> Result<Option<Success>, Failure> {
        let Some(payload) = self.store_get(ArtifactKind::Cluster, &keys.cluster) else {
            return Ok(None);
        };
        let (graph, clustering) = match decode_cluster_artifact(&payload) {
            Ok(v) => v,
            Err(defect) => {
                self.store_quarantine(ArtifactKind::Cluster, &keys.cluster, &defect);
                return Ok(None);
            }
        };
        if let Some(defect) = oracle.audit_interface(&graph) {
            self.store_quarantine(ArtifactKind::Cluster, &keys.cluster, &defect);
            return Ok(None);
        }
        let wd = budget.watchdog();
        match synthesize_watched(&graph, &clustering, &req.config, &mut Recorder::disabled(), &wd) {
            Ok((nl, csa)) => {
                if let Some(defect) = oracle.audit_netlist(&nl) {
                    self.store_quarantine(ArtifactKind::Cluster, &keys.cluster, &defect);
                    return Ok(None);
                }
                self.store_put(
                    ArtifactKind::Netlist,
                    &keys.netlist,
                    &encode_netlist_artifact(clustering.len(), csa, &nl.to_bytes()),
                );
                Ok(Some(measure(
                    keys.strategy,
                    &nl,
                    clustering.len(),
                    csa.cpa_count,
                    csa.csa_depth,
                    CacheLevel::Cluster,
                    hash,
                )))
            }
            Err(SynthError::Budget(limit)) => Err(Failure::Budget(limit)),
            Err(e) => {
                self.store_quarantine(ArtifactKind::Cluster, &keys.cluster, &e.to_string());
                Ok(None)
            }
        }
    }

    /// Level 3 (new-merge only): a stored width-optimized graph. Audit
    /// its equivalence, re-cluster, synthesize, backfill both inner
    /// levels.
    fn try_analysis_hit(
        &self,
        req: &Request,
        keys: &Keys,
        oracle: &Oracle,
        hash: &str,
        budget: &FlowBudget,
    ) -> Result<Option<Success>, Failure> {
        let Some(payload) = self.store_get(ArtifactKind::Analysis, &keys.analysis) else {
            return Ok(None);
        };
        let graph = match decode_canonical(&payload) {
            Ok(g) => g,
            Err(defect) => {
                self.store_quarantine(ArtifactKind::Analysis, &keys.analysis, &defect.to_string());
                return Ok(None);
            }
        };
        if let Some(defect) = oracle.audit_interface(&graph).or_else(|| oracle.audit_graph(&graph))
        {
            self.store_quarantine(ArtifactKind::Analysis, &keys.analysis, &defect);
            return Ok(None);
        }
        let wd = budget.watchdog();
        let (clustering, _) = refine_clusters_with(
            &graph,
            &mut IntrinsicOverrides::new(),
            &mut Recorder::disabled(),
            &mut TraceLog::disabled(),
        );
        if wd.poll() {
            return Err(Failure::Budget(trip_limit(&wd)));
        }
        match synthesize_watched(&graph, &clustering, &req.config, &mut Recorder::disabled(), &wd) {
            Ok((nl, csa)) => {
                if let Some(defect) = oracle.audit_netlist(&nl) {
                    self.store_quarantine(ArtifactKind::Analysis, &keys.analysis, &defect);
                    return Ok(None);
                }
                self.store_put(
                    ArtifactKind::Cluster,
                    &keys.cluster,
                    &encode_cluster_artifact(&encode_canonical(&graph), &clustering),
                );
                self.store_put(
                    ArtifactKind::Netlist,
                    &keys.netlist,
                    &encode_netlist_artifact(clustering.len(), csa, &nl.to_bytes()),
                );
                Ok(Some(measure(
                    keys.strategy,
                    &nl,
                    clustering.len(),
                    csa.cpa_count,
                    csa.csa_depth,
                    CacheLevel::Analysis,
                    hash,
                )))
            }
            Err(SynthError::Budget(limit)) => Err(Failure::Budget(limit)),
            Err(e) => {
                self.store_quarantine(ArtifactKind::Analysis, &keys.analysis, &e.to_string());
                Ok(None)
            }
        }
    }

    /// The full guarded flow on the canonical twin; healthy results teach
    /// the store all three levels.
    fn run_cold(
        &self,
        req: &Request,
        gc: &Dfg,
        hash: &str,
        budget: &FlowBudget,
        level: CacheLevel,
    ) -> Result<Success, Failure> {
        let guarded =
            run_flow_guarded(gc, req.strategy, &req.config, budget).map_err(|e| match e {
                SynthError::Budget(limit) => Failure::Budget(limit),
                other => Failure::Error(classify_synth(&other)),
            })?;
        let flow = &guarded.flow;
        let degraded = guarded.degradation.as_ref().map(|d| d.tags()).unwrap_or_default();
        if level == CacheLevel::Miss && degraded.is_empty() {
            let keys = Keys::new(hash, req.strategy, &req.config);
            // Cluster/analysis artifacts are stored in the transformed
            // graph's own ids, which must *be* canonical indices for a
            // later decode to line up. The width pipeline preserves ids
            // and structure so this holds; verify rather than assume.
            let opt_form = canonical_form(&flow.graph);
            if opt_form.order.iter().enumerate().all(|(i, n)| n.index() == i) {
                let graph_bytes = encode_canonical(&flow.graph);
                self.store_put(
                    ArtifactKind::Cluster,
                    &keys.cluster,
                    &encode_cluster_artifact(&graph_bytes, &flow.clustering),
                );
                if req.strategy == MergeStrategy::New {
                    self.store_put(ArtifactKind::Analysis, &keys.analysis, &graph_bytes);
                }
            }
            self.store_put(
                ArtifactKind::Netlist,
                &keys.netlist,
                &encode_netlist_artifact(
                    flow.metrics.clusters,
                    dp_synth::CsaStats {
                        csa_depth: flow.metrics.csa_depth,
                        cpa_count: flow.metrics.cpa_count,
                    },
                    &flow.netlist.to_bytes(),
                ),
            );
        }
        let mut success = measure(
            req.strategy,
            &flow.netlist,
            flow.metrics.clusters,
            flow.metrics.cpa_count,
            flow.metrics.csa_depth,
            level,
            hash,
        );
        success.degraded = degraded;
        Ok(success)
    }

    fn resolve(&self, req: &Request) -> Result<Dfg, Failure> {
        match &req.spec {
            DesignSpec::Named(name) => named_design(name)
                .ok_or_else(|| typed("usage", 2, format!("unknown design {name:?}"))),
            DesignSpec::Source(text) => match &self.parser {
                Some(parse) => parse(text).map_err(|e| typed("parse", 4, e)),
                None => Err(typed("usage", 2, "this service has no inline-source parser")),
            },
        }
    }

    fn store_get(&self, kind: ArtifactKind, key: &str) -> Option<Vec<u8>> {
        self.store.as_ref().and_then(|m| lock(m).get(kind, key))
    }

    fn store_put(&self, kind: ArtifactKind, key: &str, payload: &[u8]) {
        // A failed write (disk full, permissions) costs a future cache
        // hit, not this request.
        if let Some(m) = self.store.as_ref() {
            let _ = lock(m).put(kind, key, payload);
        }
    }

    fn store_quarantine(&self, kind: ArtifactKind, key: &str, reason: &str) {
        if let Some(m) = self.store.as_ref() {
            lock(m).quarantine(kind, key, reason);
        }
    }
}

/// Locks a store mutex, adopting the inner value if a panicking handler
/// poisoned it (the store's on-disk state is journaled; the in-memory
/// index never holds a partial write).
fn lock(m: &Mutex<Store>) -> std::sync::MutexGuard<'_, Store> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn chaos_due(counter: &AtomicU32) -> bool {
    counter.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1)).is_ok()
}

fn typed(family: &str, exit_code: u8, message: impl Into<String>) -> Failure {
    Failure::Error(WorkerError::new(family, exit_code, message))
}

/// Maps a non-budget [`SynthError`] onto the flow-error taxonomy, matching
/// the `dpmc` process exit classification for the same failure.
fn classify_synth(e: &SynthError) -> WorkerError {
    match e {
        SynthError::InvalidGraph(v) => WorkerError::new("graph", 5, v.to_string()),
        SynthError::InvalidClustering(c) => WorkerError::new("cluster", 7, c.to_string()),
        SynthError::Linearize(l) => WorkerError::new("cluster", 7, l.to_string()),
        SynthError::Audit(m) => WorkerError::new("netlist", 8, m.clone()),
        SynthError::Budget(m) => WorkerError::new("analysis", 6, m.clone()),
    }
}

fn trip_limit(wd: &Watchdog) -> String {
    wd.trip().map_or_else(|| "supervision".to_string(), |t| t.to_string())
}

fn elapsed_us(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// STA + counters for a finished netlist, under the measuring library the
/// whole workspace reports with.
fn measure(
    strategy: MergeStrategy,
    nl: &Netlist,
    clusters: usize,
    cpa_count: usize,
    csa_depth: usize,
    cache: CacheLevel,
    hash: &str,
) -> Success {
    let lib = Library::synthetic_025um();
    Success {
        strategy: strategy.to_string(),
        gates: nl.num_gates(),
        clusters,
        cpa_count,
        csa_depth,
        delay_ns: nl.longest_path(&lib).delay_ns,
        area: nl.area(&lib),
        degraded: Vec::new(),
        cache,
        hash: hash.to_string(),
    }
}

/// The three cache keys of one request.
struct Keys {
    strategy: MergeStrategy,
    analysis: String,
    cluster: String,
    netlist: String,
}

impl Keys {
    fn new(hash: &str, strategy: MergeStrategy, config: &SynthConfig) -> Keys {
        let strat = strategy_fingerprint(strategy);
        Keys {
            strategy,
            analysis: hash.to_string(),
            cluster: format!("{hash}-{strat}"),
            netlist: format!("{hash}-{strat}-{}", config_fingerprint(config)),
        }
    }
}

/// The per-request differential-audit oracle: fixed-seed vectors and the
/// request design's reference outputs. Cached artifacts are synthesized
/// from the canonical twin, whose interface corresponds to the request's
/// positionally, so audits compare output position by output position.
struct Oracle {
    inputs: Vec<usize>,
    outputs: Vec<usize>,
    lanes: Vec<Vec<BitVec>>,
    expect: Vec<Vec<BitVec>>,
}

impl Oracle {
    fn new(g: &Dfg, budget: &FlowBudget) -> Result<Oracle, String> {
        let mut rng = StdRng::seed_from_u64(budget.check_seed);
        let lanes: Vec<Vec<BitVec>> =
            (0..budget.check_vectors.max(1)).map(|_| random_inputs(g, &mut rng)).collect();
        let mut expect = Vec::with_capacity(lanes.len());
        for inputs in &lanes {
            let eval = g
                .evaluate_full_prevalidated(inputs)
                .map_err(|e| format!("reference evaluation failed: {e}"))?;
            expect.push(g.outputs().iter().map(|&o| eval.result(o).clone()).collect());
        }
        let inputs = g.inputs().iter().map(|&n| g.node(n).width()).collect();
        let outputs = g.outputs().iter().map(|&n| g.node(n).width()).collect();
        Ok(Oracle { inputs, outputs, lanes, expect })
    }

    /// Positional interface compatibility of a stored graph with the
    /// request design (counts and widths).
    fn audit_interface(&self, cand: &Dfg) -> Option<String> {
        if cand.inputs().len() != self.inputs.len() || cand.outputs().len() != self.outputs.len() {
            return Some("stored artifact interface mismatch: port counts differ".to_string());
        }
        for (k, (&n, w)) in cand.inputs().iter().zip(&self.inputs).enumerate() {
            if cand.node(n).width() != *w {
                return Some(format!("stored artifact interface mismatch: input {k} width"));
            }
        }
        for (k, (&n, w)) in cand.outputs().iter().zip(&self.outputs).enumerate() {
            if cand.node(n).width() != *w {
                return Some(format!("stored artifact interface mismatch: output {k} width"));
            }
        }
        None
    }

    /// Differential evaluation of a stored graph against the reference.
    fn audit_graph(&self, cand: &Dfg) -> Option<String> {
        for (k, (inputs, expect)) in self.lanes.iter().zip(&self.expect).enumerate() {
            let got = match cand.evaluate_full_prevalidated(inputs) {
                Ok(v) => v,
                Err(e) => return Some(format!("stored graph evaluation failed: {e}")),
            };
            for (i, (&o, want)) in cand.outputs().iter().zip(expect).enumerate() {
                if got.result(o) != want {
                    return Some(format!(
                        "stored graph differs from design on vector {k} at output {i}"
                    ));
                }
            }
        }
        None
    }

    /// Differential simulation of a stored/rebuilt netlist against the
    /// reference.
    fn audit_netlist(&self, nl: &Netlist) -> Option<String> {
        if let Err(e) = nl.check() {
            return Some(format!("stored netlist check failed: {e}"));
        }
        let batch = match nl.simulate_batch(&self.lanes) {
            Ok(v) => v,
            Err(e) => return Some(format!("stored netlist simulation failed: {e}")),
        };
        for (k, (expect, got)) in self.expect.iter().zip(&batch).enumerate() {
            if got.len() != expect.len() {
                return Some("stored netlist interface mismatch: output counts differ".to_string());
            }
            for (i, (want, have)) in expect.iter().zip(got).enumerate() {
                if want != have {
                    return Some(format!(
                        "stored netlist differs from design on vector {k} at output {i}"
                    ));
                }
            }
        }
        None
    }
}

fn parse_request(line: &str, index: usize) -> Result<Request, (String, WorkerError)> {
    let fallback_id = format!("r{index}");
    let doc = Json::parse(line).map_err(|e| {
        (fallback_id.clone(), WorkerError::new("parse", 4, format!("bad request JSON: {e}")))
    })?;
    let id = match doc.get("id") {
        Some(Json::Str(s)) => s.clone(),
        Some(Json::Int(v)) => v.to_string(),
        _ => fallback_id.clone(),
    };
    let fail = |m: String| (id.clone(), WorkerError::new("usage", 2, m));
    let design = doc.get("design").and_then(Json::as_str);
    let source = doc.get("source").and_then(Json::as_str);
    let (design, spec) = match (design, source) {
        (Some(name), None) => (name.to_string(), DesignSpec::Named(name.to_string())),
        (None, Some(text)) => ("<inline>".to_string(), DesignSpec::Source(text.to_string())),
        (Some(_), Some(_)) => {
            return Err(fail("give either \"design\" or \"source\", not both".into()))
        }
        (None, None) => {
            return Err(fail("a request needs a \"design\" or \"source\" field".into()))
        }
    };
    let strategy = match doc.get("strategy").and_then(Json::as_str) {
        None | Some("new") => MergeStrategy::New,
        Some("old") => MergeStrategy::Old,
        Some("none") => MergeStrategy::None,
        Some(other) => return Err(fail(format!("unknown strategy {other:?}"))),
    };
    let mut config = SynthConfig::default();
    match doc.get("adder").and_then(Json::as_str) {
        None => {}
        Some("ripple") => config.adder = AdderKind::Ripple,
        Some("carry-select") => config.adder = AdderKind::CarrySelect,
        Some("kogge-stone") => config.adder = AdderKind::KoggeStone,
        Some(other) => return Err(fail(format!("unknown adder {other:?}"))),
    }
    match doc.get("reduction").and_then(Json::as_str) {
        None => {}
        Some("wallace") => config.reduction = ReductionKind::Wallace,
        Some("dadda") => config.reduction = ReductionKind::Dadda,
        Some(other) => return Err(fail(format!("unknown reduction {other:?}"))),
    }
    if let Some(Json::Bool(b)) = doc.get("sign_ext_compression") {
        config.sign_ext_compression = *b;
    }
    let uint_field = |key: &str| -> Result<Option<u64>, (String, WorkerError)> {
        match doc.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => match v.as_i64().filter(|&n| n >= 0) {
                Some(n) => Ok(Some(u64::try_from(n).unwrap_or(0))),
                None => Err((
                    id.clone(),
                    WorkerError::new(
                        "usage",
                        2,
                        format!("\"{key}\" must be a non-negative integer"),
                    ),
                )),
            },
        }
    };
    let deadline_ms = uint_field("deadline_ms")?;
    let max_live_mb = uint_field("max_live_mb")?;
    let no_cache = matches!(doc.get("no_cache"), Some(Json::Bool(true)));
    Ok(Request { id, design, spec, strategy, config, deadline_ms, max_live_mb, no_cache })
}

/// The shared response prefix: schema, id, design, outcome.
fn response_head(id: &str, design: &str, outcome: &str) -> Json {
    Json::obj()
        .field("schema", SCHEMA)
        .field("id", id)
        .field("design", design)
        .field("outcome", outcome)
}

fn render_success(
    req: &Request,
    outcome: &str,
    s: &Success,
    attempts: u32,
    elapsed_us: u64,
) -> String {
    response_head(&req.id, &req.design, outcome)
        .field("strategy", s.strategy.as_str())
        .field("gates", s.gates)
        .field("clusters", s.clusters)
        .field("cpa_count", s.cpa_count)
        .field("csa_depth", s.csa_depth)
        .field("delay_ns", s.delay_ns)
        .field("area", s.area)
        .field("degraded", Json::Array(s.degraded.iter().map(|t| Json::Str(t.clone())).collect()))
        .field("cache", Json::obj().field("level", s.cache.tag()).field("key", s.hash.as_str()))
        .field("attempts", u64::from(attempts))
        .field("elapsed_us", elapsed_us)
        .render()
}

fn render_error(
    id: &str,
    design: &str,
    outcome: &str,
    e: &WorkerError,
    attempts: u32,
    elapsed_us: u64,
) -> String {
    response_head(id, design, outcome)
        .field("family", e.family.as_str())
        .field("exit_code", u64::from(e.exit_code))
        .field("message", e.message.as_str())
        .field("attempts", u64::from(attempts))
        .field("elapsed_us", elapsed_us)
        .render()
}

fn render_stats(s: &ServeStats, store: Option<StoreStats>) -> String {
    let mut doc = Json::obj()
        .field("schema", STATS_SCHEMA)
        .field("requests", s.requests)
        .field("ok", s.ok)
        .field("degraded", s.degraded)
        .field("deadline", s.deadline)
        .field("memory", s.memory)
        .field("errors", s.errors)
        .field(
            "cache",
            Json::obj()
                .field("hits_netlist", s.hits_netlist)
                .field("hits_cluster", s.hits_cluster)
                .field("hits_analysis", s.hits_analysis)
                .field("misses", s.misses)
                .field("hit_rate", s.hit_rate()),
        )
        .field("retries", s.retries);
    if let Some(st) = store {
        doc = doc.field(
            "store",
            Json::obj()
                .field("hits", st.hits)
                .field("misses", st.misses)
                .field("writes", st.writes)
                .field("quarantined", st.quarantined),
        );
    }
    doc.field("elapsed_us", s.elapsed_us).field("throughput_rps", s.throughput_rps()).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve(service: &Service, requests: &str) -> (Vec<String>, ServeStats) {
        let mut out = Vec::new();
        let stats = service.serve_lines(requests.as_bytes(), &mut out).expect("serve");
        let text = String::from_utf8(out).expect("utf8 responses");
        (text.lines().map(str::to_string).collect(), stats)
    }

    /// Strips the volatile tail (cache provenance, attempts, elapsed) so
    /// cold and warm responses can be compared for equality.
    fn scrub(line: &str) -> String {
        line.split(",\"cache\":").next().unwrap_or(line).to_string()
    }

    #[test]
    fn storeless_service_answers_and_classifies() {
        let service = Service::new(ServeOptions::default());
        let (lines, stats) = serve(
            &service,
            "{\"id\":\"a\",\"design\":\"fig1\"}\n{\"id\":\"b\",\"design\":\"nope\"}\nnot json\n",
        );
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"outcome\":\"ok\""), "{}", lines[0]);
        assert!(lines[0].contains("\"level\":\"off\""));
        assert!(
            lines[1].contains("\"outcome\":\"error\"") && lines[1].contains("\"family\":\"usage\"")
        );
        assert!(lines[2].contains("\"family\":\"parse\""));
        assert!(lines[3].contains(STATS_SCHEMA));
        assert_eq!((stats.requests, stats.ok, stats.errors), (3, 1, 2));
    }

    #[test]
    fn warm_responses_equal_cold_responses_and_hit_the_store() {
        let root = std::env::temp_dir().join(format!("dp-serve-svc-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let service =
            Service::new(ServeOptions::default()).with_store(Store::open(&root).expect("store"));
        let batch = "{\"id\":\"x\",\"design\":\"fig2\"}\n{\"id\":\"y\",\"design\":\"fig2\",\"strategy\":\"none\"}\n";
        let (cold, cold_stats) = serve(&service, batch);
        assert_eq!(cold_stats.misses, 2);
        assert_eq!(cold_stats.hits(), 0);
        let (warm, warm_stats) = serve(&service, batch);
        assert_eq!(warm_stats.hits_netlist, 2, "diagnostics: {:?}", service.store_diagnostics());
        for (c, w) in cold.iter().zip(&warm).take(2) {
            assert_eq!(scrub(c), scrub(w));
            assert!(w.contains("\"level\":\"netlist\""));
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn expired_deadline_reports_deadline_outcome() {
        let service = Service::new(ServeOptions::default());
        let (lines, stats) =
            serve(&service, "{\"id\":\"d\",\"design\":\"fig1\",\"deadline_ms\":0}\n");
        assert!(lines[0].contains("\"outcome\":\"deadline\""), "{}", lines[0]);
        assert_eq!(stats.deadline, 1);
    }

    #[test]
    fn injected_panics_retry_then_succeed() {
        let service = Service::new(ServeOptions { retries: 2, ..ServeOptions::default() });
        service.inject_panics(2);
        let (lines, stats) = serve(&service, "{\"id\":\"p\",\"design\":\"fig1\"}\n");
        assert!(lines[0].contains("\"outcome\":\"ok\""), "{}", lines[0]);
        assert!(lines[0].contains("\"attempts\":3"));
        assert_eq!(stats.retries, 2);
    }

    #[test]
    fn exhausted_retries_report_the_panic_taxonomy() {
        let service = Service::new(ServeOptions { retries: 1, ..ServeOptions::default() });
        service.inject_panics(u32::MAX);
        let (lines, stats) = serve(&service, "{\"id\":\"p\",\"design\":\"fig1\"}\n");
        service.inject_panics(0);
        assert!(lines[0].contains("\"outcome\":\"error\""), "{}", lines[0]);
        assert!(lines[0].contains("\"family\":\"panic\""));
        assert!(lines[0].contains("\"exit_code\":101"));
        assert!(lines[0].contains("chaos: injected worker panic"));
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn inline_sources_need_a_parser_and_use_one_when_given() {
        let service = Service::new(ServeOptions::default());
        let (lines, _) = serve(&service, "{\"id\":\"s\",\"source\":\"whatever\"}\n");
        assert!(lines[0].contains("no inline-source parser"), "{}", lines[0]);

        let service = Service::new(ServeOptions::default()).with_parser(Box::new(|text| {
            if text == "make-fig1" {
                named_design("fig1").ok_or_else(|| "missing".to_string())
            } else {
                Err(format!("no parse: {text}"))
            }
        }));
        let (lines, _) = serve(&service, "{\"source\":\"make-fig1\"}\n{\"source\":\"garbage\"}\n");
        assert!(lines[0].contains("\"outcome\":\"ok\""), "{}", lines[0]);
        assert!(lines[1].contains("\"family\":\"parse\""), "{}", lines[1]);
    }

    #[test]
    fn response_order_is_request_order_for_any_job_count() {
        let service = Service::new(ServeOptions { jobs: 4, ..ServeOptions::default() });
        let batch = "{\"id\":\"a\",\"design\":\"fig1\"}\n{\"id\":\"b\",\"design\":\"fig2\"}\n{\"id\":\"c\",\"design\":\"fig3\"}\n";
        let (par, _) = serve(&service, batch);
        let serial = Service::new(ServeOptions::default());
        let (seq, _) = serve(&serial, batch);
        let volatile_free =
            |lines: &[String]| lines.iter().take(3).map(|l| scrub(l)).collect::<Vec<_>>();
        assert_eq!(volatile_free(&par), volatile_free(&seq));
    }
}
