//! Incremental worklist-driven fixpoint engine for the width pipeline.
//!
//! The full-sweep pipeline ([`crate::optimize_widths_full`]) recomputes the
//! whole required-precision (RP) and information-content (IC) analyses
//! every round, O(rounds × graph). This engine keeps both analyses *live*
//! across rounds and only recomputes the ports whose inputs changed:
//!
//! * **RP** depends only on successors, so dirty nodes are processed in
//!   descending topological position, propagating to predecessors when the
//!   input-port requirement changes;
//! * **IC** depends only on predecessors, so dirty nodes are processed in
//!   ascending topological position, propagating to successors when the
//!   output bound changes.
//!
//! Each processed node settles exactly once per update (propagation only
//!   moves strictly against the processing order), so an update costs
//! O(changed region), not O(graph).
//!
//! # Why the result, trace, and counters match the full sweep
//!
//! The engine applies decisions through the *same* per-item functions as
//! the full sweep (`clamp_node`/`clamp_edge`/`prune_edge_one`/
//! `prune_node_one`), over **candidate lists that provably contain every
//! item the full sweep would change** (see `DESIGN.md` §10 for the
//! monotonicity argument: widths only shrink, so a decision can fire in a
//! later round only where its analysis inputs changed). Candidates are
//! visited in ascending id order — the full sweep's order — and
//! non-firing candidates emit nothing, so the mutation sequence, the
//! `TraceEvent` stream (including causal parents), and the per-round
//! change counters are bit-for-bit identical.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dp_dfg::{Dfg, DfgView, EdgeId, NodeId};
use dp_metrics::Watchdog;
use dp_trace::TraceLog;

use crate::ic::Ic;
use crate::info::{settle_node, InfoAnalysis, IntrinsicOverrides};
use crate::precision::{clamp_edge, clamp_node, rp_node_values, PrecisionAnalysis};
use crate::profile::{kind_index, KindCounts, KindProf};
use crate::prune::{prune_edge_one, prune_node_one, NodePrune};

/// Dense-id trait for the flag-backed sets below.
trait DenseId: Copy + Ord {
    fn ix(self) -> usize;
}

impl DenseId for NodeId {
    fn ix(self) -> usize {
        self.index()
    }
}

impl DenseId for EdgeId {
    fn ix(self) -> usize {
        self.index()
    }
}

/// An insertion-deduplicated id set: O(1) insert, drained in ascending id
/// order. Flags grow on demand so ids created mid-round just work.
struct IdSet<T: DenseId> {
    items: Vec<T>,
    flags: Vec<bool>,
}

impl<T: DenseId> IdSet<T> {
    fn new() -> Self {
        IdSet { items: Vec::new(), flags: Vec::new() }
    }

    fn insert(&mut self, id: T) {
        let i = id.ix();
        if i >= self.flags.len() {
            self.flags.resize(i + 1, false);
        }
        if !self.flags[i] {
            self.flags[i] = true;
            self.items.push(id);
        }
    }

    fn drain_sorted(&mut self) -> Vec<T> {
        for id in &self.items {
            self.flags[id.ix()] = false;
        }
        let mut v = std::mem::take(&mut self.items);
        v.sort_unstable();
        v
    }

    fn clear(&mut self) {
        for id in &self.items {
            self.flags[id.ix()] = false;
        }
        self.items.clear();
    }
}

/// The incremental pipeline state carried across fixpoint rounds.
pub(crate) struct Engine {
    view: DfgView,
    rp: PrecisionAnalysis,
    ic: InfoAnalysis,
    /// Always empty in the pipeline (Huffman overrides only exist in the
    /// merge loop's fresh recomputations); threaded through so the shared
    /// [`settle_node`] has its full signature.
    overrides: IntrinsicOverrides,
    round: usize,
    /// Nodes whose RP inputs changed since the last RP update.
    rp_dirty: IdSet<NodeId>,
    /// Nodes whose IC inputs changed since the last IC update.
    ic_dirty: IdSet<NodeId>,
    /// Edge-prune candidate accumulator: edges whose claim, own width, or
    /// destination width changed since the last edge-prune apply, plus
    /// edges created since then.
    edge_cand: IdSet<EdgeId>,
    /// Node-prune candidate accumulator: operator nodes whose intrinsic
    /// bound changed since the last node-prune apply.
    node_cand: IdSet<NodeId>,
    /// Scratch: whether a node is currently queued in an update heap.
    in_heap: Vec<bool>,
    /// Edges already presented to an edge-prune apply at least once.
    num_edges_seen: usize,
    /// Worklist insertions this round (analysis updates only).
    pushes: usize,
    /// Node recomputations this round across the three analysis updates.
    visits: usize,
    /// Per-node-kind visit tallies (and optional timing samples) for the
    /// same recomputations `visits` counts.
    prof: KindProf,
}

impl Engine {
    /// Creates an engine for `g`. Analyses are computed lazily: the first
    /// round runs full sweeps (everything is dirty by definition).
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub(crate) fn new(g: &Dfg) -> Engine {
        Engine {
            view: DfgView::new(g),
            rp: PrecisionAnalysis { out_port: Vec::new(), in_port: Vec::new() },
            ic: InfoAnalysis {
                node_out: Vec::new(),
                intrinsic: Vec::new(),
                edge_signal: Vec::new(),
                operand: Vec::new(),
            },
            overrides: IntrinsicOverrides::new(),
            round: 0,
            rp_dirty: IdSet::new(),
            ic_dirty: IdSet::new(),
            edge_cand: IdSet::new(),
            node_cand: IdSet::new(),
            in_heap: Vec::new(),
            num_edges_seen: 0,
            pushes: 0,
            visits: 0,
            prof: KindProf::default(),
        }
    }

    /// Enables per-visit timing samples (full-telemetry runs only; visit
    /// counts are collected regardless).
    pub(crate) fn set_timing(&mut self, on: bool) {
        self.prof.set_timing(on);
    }

    /// Returns and resets the per-kind visit tallies accumulated since
    /// the last call (one round's worth, in the pipeline loop).
    pub(crate) fn take_kinds(&mut self) -> KindCounts {
        self.prof.take()
    }

    /// Starts a round: refreshes the adjacency view after last round's
    /// structural mutations, grows the analysis arrays for new nodes/edges
    /// (sentinel values guarantee their first recompute registers as a
    /// change), and queues never-examined edges as prune candidates.
    pub(crate) fn begin_round(&mut self, g: &Dfg) {
        self.round += 1;
        self.view.refresh(g);
        if self.round > 1 {
            let n = g.num_nodes();
            self.rp.out_port.resize(n, usize::MAX);
            self.rp.in_port.resize(n, usize::MAX);
            self.ic.node_out.resize(n, Ic::trivial(0));
            self.ic.intrinsic.resize(n, None);
            let m = g.num_edges();
            self.ic.edge_signal.resize(m, Ic::trivial(0));
            self.ic.operand.resize(m, Ic::trivial(0));
            for i in self.num_edges_seen..m {
                self.edge_cand.insert(EdgeId::from_index(i));
            }
        }
        self.num_edges_seen = g.num_edges();
    }

    /// Returns and resets this round's `(worklist_pushes, ports_visited)`.
    pub(crate) fn take_work(&mut self) -> (usize, usize) {
        (std::mem::take(&mut self.pushes), std::mem::take(&mut self.visits))
    }

    /// The RP half of a round: update the analysis (full sweep in round 1,
    /// worklist-driven afterwards), then apply node and edge clamps to the
    /// changed candidates in ascending id order.
    ///
    /// Supervision: `wd` is checked cooperatively inside the sweep and
    /// worklist loops. An abort *during analysis* skips the apply phases
    /// entirely (clamping against a half-computed RP table would be
    /// unsound); an abort *during apply* is safe mid-stream because every
    /// applied clamp used the completed analysis. Either way the graph
    /// remains functionally correct — only incomplete.
    pub(crate) fn rp_round(
        &mut self,
        g: &mut Dfg,
        tr: &mut TraceLog,
        wd: &Watchdog,
    ) -> (usize, usize) {
        let mut nodes = 0;
        let mut edges = 0;
        if wd.check() {
            return (0, 0);
        }
        if self.round == 1 {
            self.rp.out_port.clear();
            self.rp.out_port.resize(g.num_nodes(), 0);
            self.rp.in_port.clear();
            self.rp.in_port.resize(g.num_nodes(), 0);
            let mut done = 0usize;
            for i in (0..self.view.topo().len()).rev() {
                if wd.check() {
                    break;
                }
                let n = self.view.topo()[i];
                let k = kind_index(g.node(n).kind());
                let t = self.prof.begin(k);
                let (out, inp) = rp_node_values(g, n, &self.rp.in_port);
                self.prof.end(k, t);
                self.rp.out_port[n.index()] = out;
                self.rp.in_port[n.index()] = inp;
                done += 1;
            }
            self.visits += done;
            if done < self.view.topo().len() {
                return (0, 0);
            }
            self.rp_dirty.clear();
            for i in 0..g.num_nodes() {
                if wd.check() {
                    return (nodes, edges);
                }
                let n = NodeId::from_index(i);
                if clamp_node(g, &self.rp, n, tr) {
                    nodes += 1;
                    self.after_node_width_change(g, n);
                }
            }
            for i in 0..g.num_edges() {
                if wd.check() {
                    return (nodes, edges);
                }
                let e = EdgeId::from_index(i);
                if clamp_edge(g, &self.rp, e, tr) {
                    edges += 1;
                    self.after_edge_change(g, e);
                }
            }
        } else {
            let Some((mut out_changed, in_changed)) = self.rp_update(g, wd) else {
                return (0, 0);
            };
            out_changed.sort_unstable();
            for n in out_changed {
                if wd.check() {
                    return (nodes, edges);
                }
                if clamp_node(g, &self.rp, n, tr) {
                    nodes += 1;
                    self.after_node_width_change(g, n);
                }
            }
            // An edge clamp needs r at its reader's input port to have
            // dropped, so the candidates are the fanin edges of nodes whose
            // input-port requirement changed.
            let mut ecand: Vec<EdgeId> = Vec::new();
            for &n in &in_changed {
                ecand.extend_from_slice(self.view.fanin(n));
            }
            ecand.sort_unstable();
            ecand.dedup();
            for e in ecand {
                if wd.check() {
                    return (nodes, edges);
                }
                if clamp_edge(g, &self.rp, e, tr) {
                    edges += 1;
                    self.after_edge_change(g, e);
                }
            }
        }
        (nodes, edges)
    }

    /// Incremental RP update: processes dirty nodes in descending
    /// topological position (successors settle before the nodes that read
    /// them). Returns the nodes whose output-port / input-port values
    /// changed, or `None` when the watchdog aborted the update mid-heap
    /// (the partial analysis must not feed the apply phase).
    fn rp_update(&mut self, g: &Dfg, wd: &Watchdog) -> Option<(Vec<NodeId>, Vec<NodeId>)> {
        let mut out_changed = Vec::new();
        let mut in_changed = Vec::new();
        let Engine { view, rp, rp_dirty, in_heap, pushes, visits, prof, .. } = self;
        in_heap.resize(view.num_nodes().max(in_heap.len()), false);
        let mut heap: BinaryHeap<(u32, NodeId)> = BinaryHeap::new();
        for n in rp_dirty.drain_sorted() {
            in_heap[n.index()] = true;
            heap.push((view.topo_pos(n) as u32, n));
            *pushes += 1;
        }
        while let Some((_, n)) = heap.pop() {
            if wd.check() {
                for (_, rest) in heap {
                    in_heap[rest.index()] = false;
                }
                in_heap[n.index()] = false;
                return None;
            }
            in_heap[n.index()] = false;
            *visits += 1;
            let k = kind_index(g.node(n).kind());
            let t = prof.begin(k);
            let (out, inp) = rp_node_values(g, n, &rp.in_port);
            prof.end(k, t);
            let i = n.index();
            if out != rp.out_port[i] {
                rp.out_port[i] = out;
                out_changed.push(n);
            }
            if inp != rp.in_port[i] {
                rp.in_port[i] = inp;
                in_changed.push(n);
                for &e in view.fanin(n) {
                    let src = g.edge(e).src();
                    if !in_heap[src.index()] {
                        in_heap[src.index()] = true;
                        heap.push((view.topo_pos(src) as u32, src));
                        *pushes += 1;
                    }
                }
            }
        }
        Some((out_changed, in_changed))
    }

    /// The IC edge half of a round: update the analysis, then apply the
    /// Lemma 5.7 edge prune to the candidates in ascending id order.
    /// Watchdog semantics match [`Engine::rp_round`].
    pub(crate) fn ic_edge_round(&mut self, g: &mut Dfg, tr: &mut TraceLog, wd: &Watchdog) -> usize {
        let mut changed = 0;
        if wd.check() {
            return 0;
        }
        if self.round == 1 {
            if !self.full_ic(g, wd) {
                return 0;
            }
            self.edge_cand.clear();
            for i in 0..g.num_edges() {
                if wd.check() {
                    return changed;
                }
                let e = EdgeId::from_index(i);
                if prune_edge_one(g, &self.ic, e, tr) {
                    changed += 1;
                    self.after_edge_change(g, e);
                }
            }
        } else {
            if !self.ic_update(g, wd) {
                return 0;
            }
            for e in self.edge_cand.drain_sorted() {
                if wd.check() {
                    return changed;
                }
                if prune_edge_one(g, &self.ic, e, tr) {
                    changed += 1;
                    self.after_edge_change(g, e);
                }
            }
        }
        changed
    }

    /// The IC node half of a round: update the analysis again (the full
    /// sweep also recomputes IC between the edge and node prunes), then
    /// apply the Lemma 5.6 node prune to the candidates in ascending id
    /// order, inserting extension nodes where interfaces must be kept.
    /// Watchdog semantics match [`Engine::rp_round`].
    pub(crate) fn ic_node_round(
        &mut self,
        g: &mut Dfg,
        tr: &mut TraceLog,
        wd: &Watchdog,
    ) -> (usize, usize) {
        let mut narrowed = 0;
        let mut inserted = 0;
        let mut scratch = Vec::new();
        if wd.check() {
            return (0, 0);
        }
        let candidates: Vec<NodeId> = if self.round == 1 {
            if !self.full_ic(g, wd) {
                return (0, 0);
            }
            self.node_cand.clear();
            (0..g.num_nodes()).map(NodeId::from_index).collect()
        } else {
            if !self.ic_update(g, wd) {
                return (0, 0);
            }
            self.node_cand.drain_sorted()
        };
        for n in candidates {
            if wd.check() {
                return (narrowed, inserted);
            }
            match prune_node_one(g, &self.ic, n, tr, &mut scratch) {
                NodePrune::Unchanged => {}
                NodePrune::Narrowed { ext } => {
                    narrowed += 1;
                    self.after_node_width_change(g, n);
                    if let Some(ext) = ext {
                        inserted += 1;
                        self.after_ext_insert(g, ext);
                    }
                }
            }
        }
        (narrowed, inserted)
    }

    /// Full IC sweep (round 1 only): settles every node in topological
    /// order through the same [`settle_node`] the incremental path uses.
    /// Returns `false` when the watchdog aborted the sweep (the partial
    /// analysis must not feed a prune).
    fn full_ic(&mut self, g: &Dfg, wd: &Watchdog) -> bool {
        let Engine { view, ic, overrides, ic_dirty, visits, prof, .. } = self;
        ic.node_out.clear();
        ic.node_out.resize(g.num_nodes(), Ic::trivial(0));
        ic.intrinsic.clear();
        ic.intrinsic.resize(g.num_nodes(), None);
        ic.edge_signal.clear();
        ic.edge_signal.resize(g.num_edges(), Ic::trivial(0));
        ic.operand.clear();
        ic.operand.resize(g.num_edges(), Ic::trivial(0));
        let mut done = 0usize;
        for &n in view.topo() {
            if wd.check() {
                break;
            }
            let k = kind_index(g.node(n).kind());
            let t = prof.begin(k);
            settle_node(g, n, ic, overrides);
            prof.end(k, t);
            done += 1;
        }
        *visits += done;
        if done < view.topo().len() {
            return false;
        }
        ic_dirty.clear();
        true
    }

    /// Incremental IC update: processes dirty nodes in ascending
    /// topological position (predecessors settle before the nodes that
    /// read them), feeding claim changes into the prune-candidate
    /// accumulators. Returns `false` when the watchdog aborted mid-heap.
    fn ic_update(&mut self, g: &Dfg, wd: &Watchdog) -> bool {
        let Engine {
            view,
            ic,
            overrides,
            ic_dirty,
            edge_cand,
            node_cand,
            in_heap,
            pushes,
            visits,
            prof,
            ..
        } = self;
        in_heap.resize(view.num_nodes().max(in_heap.len()), false);
        let mut heap: BinaryHeap<Reverse<(u32, NodeId)>> = BinaryHeap::new();
        for n in ic_dirty.drain_sorted() {
            in_heap[n.index()] = true;
            heap.push(Reverse((view.topo_pos(n) as u32, n)));
            *pushes += 1;
        }
        while let Some(Reverse((_, n))) = heap.pop() {
            if wd.check() {
                for Reverse((_, rest)) in heap {
                    in_heap[rest.index()] = false;
                }
                in_heap[n.index()] = false;
                return false;
            }
            in_heap[n.index()] = false;
            *visits += 1;
            let i = n.index();
            let old_out = ic.node_out[i];
            let old_intr = ic.intrinsic[i];
            let ins = g.node(n).in_edges();
            let mut old_sigs = [Ic::trivial(0); 2];
            for (k, &e) in ins.iter().enumerate() {
                old_sigs[k] = ic.edge_signal[e.index()];
            }
            let kb = kind_index(g.node(n).kind());
            let tb = prof.begin(kb);
            settle_node(g, n, ic, overrides);
            prof.end(kb, tb);
            for (k, &e) in ins.iter().enumerate() {
                if ic.edge_signal[e.index()] != old_sigs[k] {
                    edge_cand.insert(e);
                }
            }
            if ic.intrinsic[i] != old_intr {
                node_cand.insert(n);
            }
            if ic.node_out[i] != old_out {
                for &e in view.fanout(n) {
                    let dst = g.edge(e).dst();
                    if !in_heap[dst.index()] {
                        in_heap[dst.index()] = true;
                        heap.push(Reverse((view.topo_pos(dst) as u32, dst)));
                        *pushes += 1;
                    }
                }
            }
        }
        true
    }

    /// Dirty propagation after `w(n)` shrank: the node's own RP input port
    /// and IC read it, every fanout signal reads it as the source width,
    /// and the destination-width guard of the edge prune makes the fanin
    /// edges candidates again.
    fn after_node_width_change(&mut self, g: &Dfg, n: NodeId) {
        let Engine { view, rp_dirty, ic_dirty, edge_cand, .. } = self;
        rp_dirty.insert(n);
        ic_dirty.insert(n);
        for &e in view.fanout(n) {
            ic_dirty.insert(g.edge(e).dst());
        }
        for &e in view.fanin(n) {
            edge_cand.insert(e);
        }
    }

    /// Dirty propagation after `w(e)` / `t(e)` changed: the source's RP
    /// output port reads the edge width; the destination's IC settle reads
    /// both; the edge itself may fire again once claims move.
    fn after_edge_change(&mut self, g: &Dfg, e: EdgeId) {
        let edge = g.edge(e);
        self.rp_dirty.insert(edge.src());
        self.ic_dirty.insert(edge.dst());
        self.edge_cand.insert(e);
    }

    /// Dirty propagation after an extension node was spliced behind a
    /// pruned node: the new node needs both analyses (its sentinel array
    /// entries make every computed value register as changed, so it also
    /// becomes a clamp candidate), and the rewired consumers re-read their
    /// operand from the new source. The new feed edge becomes a prune
    /// candidate via `begin_round`'s new-edge scan. (The pruned node's own
    /// seeds were already planted by [`Engine::after_node_width_change`];
    /// its RP output port additionally changed shape, which `rp_dirty`
    /// already covers.)
    fn after_ext_insert(&mut self, g: &Dfg, ext: NodeId) {
        self.rp_dirty.insert(ext);
        self.ic_dirty.insert(ext);
        for &e in g.node(ext).out_edges() {
            let edge = g.edge(e);
            self.ic_dirty.insert(edge.dst());
            self.rp_dirty.insert(edge.dst());
        }
    }
}
