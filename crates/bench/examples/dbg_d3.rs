use dp_merge::{cluster_leakage, find_breaks_leakage};
use dp_testcases::designs;

fn main() {
    let g = designs::d3();
    let breaks = find_breaks_leakage(&g);
    for n in g.node_ids() {
        if breaks[n.index()] {
            println!("break: {n} {:?} w {}", g.node(n).kind(), g.node(n).width());
        }
    }
    let c = cluster_leakage(&g);
    println!("clusters: {}", c.len());
    for cl in &c.clusters {
        println!("  {:?} out {}", cl.members, cl.output);
    }
}
