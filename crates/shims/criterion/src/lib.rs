//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach a crate registry, so the workspace
//! vendors the subset of criterion's API that its `harness = false` benches
//! use: `Criterion::benchmark_group`, group tuning knobs, `bench_function`
//! / `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark runs `sample_size`
//! timed samples after one warm-up call and prints mean/min wall-clock
//! times. There is no statistical analysis, HTML report, or baseline
//! comparison — the benches exist to track costs by eye and to stay
//! compiling.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Label for one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` once to warm up, then `samples` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.elapsed.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks with shared tuning.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim always warms up with one
    /// untimed call instead of a time budget.
    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim always runs exactly
    /// `sample_size` samples.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<I: Display, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.sample_size, elapsed: Vec::new() };
        f(&mut b);
        self.report(&id.to_string(), &b.elapsed);
        self
    }

    pub fn bench_with_input<I: Display, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let mut b = Bencher { samples: self.sample_size, elapsed: Vec::new() };
        f(&mut b, input);
        self.report(&id.to_string(), &b.elapsed);
        self
    }

    pub fn finish(self) {}

    fn report(&mut self, id: &str, samples: &[Duration]) {
        let name = format!("{}/{}", self.name, id);
        if samples.is_empty() {
            println!("{name:<60} (no samples)");
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        println!("{name:<60} mean {mean:>12?}   min {min:>12?}   ({} samples)", samples.len());
        self.criterion.benchmarks_run += 1;
    }
}

/// Entry point handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    pub fn benchmark_group<N: Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        println!("== bench group: {name}");
        BenchmarkGroup { criterion: self, name, sample_size: 10 }
    }

    pub fn bench_function<I: Display, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.benchmark_group("default").bench_function(id, f);
        self
    }

    /// Total number of benchmarks reported so far.
    pub fn benchmarks_run(&self) -> usize {
        self.benchmarks_run
    }
}

/// Opaque identity function that defeats constant folding of bench inputs
/// and results.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function named `$name` running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; accept and ignore.
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("count", |b| b.iter(|| (0..100).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("double", 21), &21u64, |b, &n| b.iter(|| n * 2));
        group.finish();
        assert_eq!(c.benchmarks_run(), 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
