//! The combined width-optimization pipeline used ahead of clustering.

use dp_dfg::Dfg;

use crate::precision::rp_transform;
use crate::prune::{prune_edge_widths, prune_node_widths};

/// What [`optimize_widths`] changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransformReport {
    /// Node widths shrunk (required precision + information content).
    pub node_width_changes: usize,
    /// Edge widths shrunk.
    pub edge_width_changes: usize,
    /// Extension nodes inserted to preserve consumer interfaces.
    pub extensions_inserted: usize,
    /// Fixpoint rounds executed.
    pub rounds: usize,
}

/// Runs the full functionally-safe width-reduction pipeline to a fixpoint:
/// required-precision clamping (Theorem 4.2), information-content edge
/// pruning (Lemma 5.7) and node pruning with extension-node insertion
/// (Lemma 5.6), repeated until nothing changes.
///
/// Each constituent pass preserves the value at every output for every
/// input assignment, so the composition does too (enforced by the property
/// tests in this crate and in the integration suite).
///
/// # Panics
///
/// Panics if the graph is cyclic or structurally invalid.
pub fn optimize_widths(g: &mut Dfg) -> TransformReport {
    let mut report = TransformReport::default();
    loop {
        let (n_rp, e_rp) = rp_transform(g);
        let e_ic = prune_edge_widths(g);
        let (n_ic, ext) = prune_node_widths(g);
        report.node_width_changes += n_rp + n_ic;
        report.edge_width_changes += e_rp + e_ic;
        report.extensions_inserted += ext;
        report.rounds += 1;
        if n_rp + e_rp + e_ic + ext + n_ic == 0 || report.rounds > 8 {
            break;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_bitvec::Signedness::*;
    use dp_dfg::gen::{random_dfg, random_inputs, GenConfig};
    use dp_dfg::OpKind;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn pipeline_reaches_fixpoint_and_preserves_function() {
        let mut rng = StdRng::seed_from_u64(0xF1F0);
        for case in 0..40 {
            let g0 = random_dfg(&mut rng, &GenConfig::default());
            let mut g1 = g0.clone();
            let report = optimize_widths(&mut g1);
            assert!(report.rounds <= 8, "case {case}: runaway pipeline");
            g1.validate().unwrap();
            // Running again changes nothing.
            let again = optimize_widths(&mut g1.clone());
            assert_eq!(again.node_width_changes, 0, "case {case}");
            assert_eq!(again.edge_width_changes, 0, "case {case}");
            for _ in 0..15 {
                let inputs = random_inputs(&g0, &mut rng);
                assert_eq!(
                    g0.evaluate(&inputs).unwrap(),
                    g1.evaluate(&inputs).unwrap(),
                    "case {case}"
                );
            }
        }
    }

    #[test]
    fn pipeline_shrinks_total_width_on_redundant_designs() {
        // The D4/D5 scenario: everything declared at 32 bits over small data.
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let b = g.input("b", 4);
        let c = g.input("c", 4);
        let s1 = g.op(OpKind::Add, 32, &[(a, Signed), (b, Signed)]);
        let s2 = g.op(OpKind::Add, 32, &[(s1, Signed), (c, Signed)]);
        g.output("o", 32, s2, Signed);
        let before = g.total_op_width();
        let report = optimize_widths(&mut g);
        let after = g.total_op_width();
        assert!(after <= 11, "total op width {after} (was {before})");
        assert!(report.node_width_changes >= 2);
    }
}
