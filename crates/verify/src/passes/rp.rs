//! `R0xx`: required-precision soundness (Definition 4.1 / Theorem 4.2).
//!
//! The pass recomputes required precision from scratch on the graph under
//! scrutiny and compares it against the declared widths:
//!
//! - **R001** (error, optimized only): `r(p) > w(n)` on an operator or
//!   extension node. Theorem 4.2's clamp guarantees `r <= w` at the width
//!   fixpoint, so on an optimized graph this means some width was shrunk
//!   *below* what consumers require — the classic corruption this verifier
//!   exists to catch.
//! - **R002** (error, needs baseline): a node is narrower than
//!   `min(w_baseline, max(r, 1), max(i, 1))`. Neither the RP clamp nor
//!   information-content pruning ever narrows below that floor, so going
//!   under it loses functionality relative to the parsed design.
//! - **R003** (warning, optimized only): a node or edge is *wider* than
//!   the clamp allows — the pipeline did not reach its fixpoint.
//! - **R004** (warning): the attached [`TransformReport`] says the round
//!   cap was hit before convergence.
//! - **R005** (info): an operator with `r = 0` — dead code no output
//!   observes.
//!
//! [`TransformReport`]: dp_analysis::TransformReport

use dp_analysis::{info_content, required_precision};
use dp_dfg::NodeKind;

use crate::{Code, Context, Diagnostic, Location, Pass};

/// Required-precision checker (see the module docs for the code list).
pub struct RpSoundness;

impl Pass for RpSoundness {
    fn name(&self) -> &'static str {
        "rp-soundness"
    }

    fn run(&self, cx: &Context<'_>, out: &mut Vec<Diagnostic>) {
        let g = cx.graph;
        let rp = required_precision(g);
        let ic = info_content(g);

        if let Some(t) = cx.transform {
            if !t.converged {
                out.push(Diagnostic::new(
                    Code::R004,
                    Location::Global,
                    format!(
                        "width pipeline stopped after {} round(s) while still making \
                         changes; further width reductions remain",
                        t.rounds
                    ),
                ));
            }
        }

        for n in g.node_ids() {
            let node = g.node(n);
            let clampable = matches!(node.kind(), NodeKind::Op(_) | NodeKind::Extension(_));
            if !clampable {
                continue;
            }
            let r = rp.output_port(n);
            let w = node.width();
            if cx.assume_optimized {
                if r > w {
                    out.push(Diagnostic::new(
                        Code::R001,
                        Location::Node(n),
                        format!(
                            "consumers require {r} low bit(s) but the node is only \
                             {w} bit(s) wide"
                        ),
                    ));
                } else if r.max(1) < w {
                    out.push(Diagnostic::new(
                        Code::R003,
                        Location::Node(n),
                        format!(
                            "width {w} exceeds required precision {r}; the Theorem 4.2 \
                             clamp would narrow this node"
                        ),
                    ));
                }
            }
            if node.kind().is_op() && r == 0 {
                out.push(Diagnostic::new(
                    Code::R005,
                    Location::Node(n),
                    "no primary output observes this operator",
                ));
            }
            if let Some(base) = cx.baseline {
                if node.kind().is_op() && n.index() < base.num_nodes() {
                    let w_before = base.node(n).width();
                    let i = ic.intrinsic(n).map_or(usize::MAX, |x| x.i);
                    let floor = w_before.min(r.max(1)).min(i.max(1));
                    if w < floor {
                        out.push(Diagnostic::new(
                            Code::R002,
                            Location::Node(n),
                            format!(
                                "width {w} is below the justified floor {floor} \
                                 (baseline {w_before}, required precision {r}, \
                                 information content {i})"
                            ),
                        ));
                    }
                }
            }
        }

        if cx.assume_optimized {
            for e in g.edge_ids() {
                let edge = g.edge(e);
                let r = rp.input_port(edge.dst()).max(1);
                if edge.width() > r {
                    out.push(Diagnostic::new(
                        Code::R003,
                        Location::Edge(e),
                        format!(
                            "edge width {} exceeds the destination's required \
                             precision {r}; the Theorem 4.2 clamp would narrow it",
                            edge.width()
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Verifier;
    use dp_analysis::optimize_widths;
    use dp_bitvec::Signedness::*;
    use dp_dfg::{Dfg, OpKind};

    /// The paper's Figure 3 graph (8-bit adders over 3-bit inputs).
    fn figure3() -> Dfg {
        let mut g = Dfg::new();
        let a = g.input("A", 3);
        let b = g.input("B", 3);
        let c = g.input("C", 3);
        let d = g.input("D", 3);
        let e = g.input("E", 9);
        let n1 = g.op(OpKind::Add, 8, &[(a, Signed), (b, Signed)]);
        let n2 = g.op(OpKind::Add, 8, &[(c, Signed), (d, Signed)]);
        let n3 = g.op(OpKind::Add, 8, &[(n1, Signed), (n2, Signed)]);
        let n4 = g.op_with_edges(OpKind::Add, 9, &[(n3, 9, Signed), (e, 9, Signed)]);
        g.output("R", 10, n4, Signed);
        g
    }

    #[test]
    fn optimized_figure3_is_error_free() {
        let base = figure3();
        let mut g = base.clone();
        let t = optimize_widths(&mut g);
        let report = Verifier::default()
            .run(&Context::new(&g).baseline(&base).transform(&t).optimized(true));
        assert!(!report.has_errors(), "{}", report.render(&g));
        assert_eq!(report.count(crate::Severity::Warn), 0, "{}", report.render(&g));
    }

    #[test]
    fn raw_figure3_in_lenient_mode_is_error_free() {
        let g = figure3();
        // Unoptimized: r > w at n1 (consumers read 9 bits of an 8-bit
        // adder). That is the *design's* truncation — lenient mode must
        // not flag it.
        let report = Verifier::default().run(&Context::new(&g));
        assert!(!report.has_errors(), "{}", report.render(&g));
    }

    #[test]
    fn shrinking_below_rp_raises_r001_and_r002() {
        let base = figure3();
        let mut g = base.clone();
        optimize_widths(&mut g);
        // Corrupt: shrink the final adder below its required precision.
        let n4 = g.op_nodes().max_by_key(|n| n.index()).expect("figure 3 has operators");
        assert!(g.node(n4).width() > 2);
        g.set_node_width(n4, 2);
        let report = Verifier::default().run(&Context::new(&g).baseline(&base).optimized(true));
        assert!(report.has_code(Code::R001), "{}", report.render(&g));
        assert!(report.has_code(Code::R002), "{}", report.render(&g));
        assert!(report.has_errors());
    }

    #[test]
    fn unconverged_transform_report_raises_r004() {
        let g = figure3();
        let t = dp_analysis::TransformReport {
            rounds: 9,
            node_width_changes: 3,
            converged: false,
            ..Default::default()
        };
        let report = Verifier::default().run(&Context::new(&g).transform(&t));
        assert!(report.has_code(Code::R004), "{}", report.render(&g));
        assert!(!report.has_errors());
    }

    #[test]
    fn dead_operator_raises_r005() {
        let mut g = Dfg::new();
        let a = g.input("a", 4);
        let live = g.op(OpKind::Neg, 5, &[(a, Signed)]);
        let _dead = g.op(OpKind::Add, 6, &[(a, Unsigned), (a, Unsigned)]);
        g.output("o", 5, live, Signed);
        let report = Verifier::default().run(&Context::new(&g));
        assert!(report.has_code(Code::R005), "{}", report.render(&g));
        assert!(!report.has_errors());
    }
}
