//! Random DFG generation for property-based testing and benchmarking.
//!
//! The generator produces valid, connected-enough graphs that exercise the
//! interesting corners of the paper's model: widths that truncate real
//! information, widths with redundant headroom, mixed edge signedness, and
//! reconvergent fanout.

use dp_bitvec::{BitVec, Signedness};
use rand::Rng;

use crate::{Dfg, NodeId, OpKind};

/// Tunable parameters for [`random_dfg`].
///
/// # Examples
///
/// ```
/// use dp_dfg::gen::{random_dfg, random_inputs, GenConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let g = random_dfg(&mut rng, &GenConfig::default());
/// g.validate().unwrap();
/// let inputs = random_inputs(&g, &mut rng);
/// g.evaluate(&inputs).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of operator nodes.
    pub num_ops: usize,
    /// Inclusive range of input widths.
    pub input_width: (usize, usize),
    /// Probability that an edge is signed.
    pub p_signed: f64,
    /// Probability that a node width truncates its natural (full-precision)
    /// result width.
    pub p_truncate: f64,
    /// Probability that a node width carries redundant headroom beyond the
    /// natural width (the paper's D4/D5 scenario).
    pub p_redundant: f64,
    /// Maximum headroom bits added when a width is redundant.
    pub max_redundancy: usize,
    /// Relative weight of multiplication among generated operators
    /// (additive operators share the rest equally).
    pub mul_weight: f64,
    /// Probability of adding a small constant operand instead of reusing an
    /// existing signal.
    pub p_constant: f64,
    /// Hard cap on any generated width (keeps evaluation cheap).
    pub max_width: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            num_inputs: 4,
            num_ops: 12,
            input_width: (2, 8),
            p_signed: 0.5,
            p_truncate: 0.25,
            p_redundant: 0.25,
            max_redundancy: 8,
            mul_weight: 0.15,
            p_constant: 0.1,
            max_width: 48,
        }
    }
}

/// Generates a random valid DFG according to `config`.
///
/// Every operator node is reachable from the inputs, and every dangling
/// result is terminated with an output node, so [`Dfg::validate`] always
/// succeeds on the generated graph.
pub fn random_dfg<R: Rng + ?Sized>(rng: &mut R, config: &GenConfig) -> Dfg {
    // Streaming construction: the arenas are sized up front from the
    // config (nodes ≈ inputs + ops + constants + outputs, edges ≈ two per
    // op plus one per output) and each operator is appended with only
    // fixed-size scratch, so generating a million-op design performs no
    // per-node heap allocation beyond the arenas themselves.
    let ops = config.num_ops;
    let mut g = Dfg::with_capacity(config.num_inputs.max(1) + 3 * ops / 2 + 16, 3 * ops + 16);
    let mut pool: Vec<NodeId> = Vec::with_capacity(config.num_inputs.max(1) + ops);
    for i in 0..config.num_inputs.max(1) {
        let w =
            rng.gen_range(config.input_width.0..=config.input_width.1.max(config.input_width.0));
        pool.push(g.input(format!("i{i}"), w.clamp(1, config.max_width)));
    }

    for _ in 0..config.num_ops {
        let op = pick_op(rng, config);
        let arity = op.arity();
        let mut operands = [NodeId::from_index(0); 2];
        for slot in operands.iter_mut().take(arity) {
            *slot = if rng.gen_bool(config.p_constant) {
                let w = rng.gen_range(1..=4);
                let value = BitVec::from_fn(w, |_| rng.gen_bool(0.5));
                g.constant(value)
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
        }
        let natural = natural_width(&g, op, &operands[..arity]).min(config.max_width);
        let width = adjust_width(rng, config, natural);
        let mut full = [(NodeId::from_index(0), 0usize, Signedness::Unsigned); 2];
        for (slot, &src) in full.iter_mut().zip(&operands[..arity]) {
            let sw = g.node(src).width();
            // Edge width: usually the full source, occasionally a
            // truncating or extending edge.
            let ew = if rng.gen_bool(0.2) {
                rng.gen_range(1..=(sw + 2).min(config.max_width))
            } else {
                sw
            };
            *slot = (src, ew, signedness(rng, config));
        }
        let n = g.op_with_edges(op, width, &full[..arity]);
        pool.push(n);
    }

    // Terminate everything that has no consumer.
    let dangling: Vec<NodeId> =
        pool.iter().copied().filter(|&n| g.node(n).out_edges().is_empty()).collect();
    for (k, n) in dangling.into_iter().enumerate() {
        let w = g.node(n).width();
        let ow = adjust_width(rng, config, w);
        g.output(format!("o{k}"), ow, n, signedness(rng, config));
    }
    g
}

/// Generates one random input vector matching the interface of `g`.
pub fn random_inputs<R: Rng + ?Sized>(g: &Dfg, rng: &mut R) -> Vec<BitVec> {
    g.inputs().iter().map(|&n| BitVec::from_fn(g.node(n).width(), |_| rng.gen_bool(0.5))).collect()
}

fn pick_op<R: Rng + ?Sized>(rng: &mut R, config: &GenConfig) -> OpKind {
    if rng.gen_bool(config.mul_weight.clamp(0.0, 1.0)) {
        OpKind::Mul
    } else {
        match rng.gen_range(0..8) {
            0..=3 => OpKind::Add,
            4 | 5 => OpKind::Sub,
            6 => OpKind::Neg,
            _ => OpKind::Shl(rng.gen_range(1..4)),
        }
    }
}

fn signedness<R: Rng + ?Sized>(rng: &mut R, config: &GenConfig) -> Signedness {
    if rng.gen_bool(config.p_signed.clamp(0.0, 1.0)) {
        Signedness::Signed
    } else {
        Signedness::Unsigned
    }
}

/// Full-precision result width for an operator over the given sources.
fn natural_width(g: &Dfg, op: OpKind, operands: &[NodeId]) -> usize {
    let w = |k: usize| g.node(operands[k]).width();
    match op {
        OpKind::Add | OpKind::Sub => w(0).max(w(1)) + 1,
        OpKind::Mul => w(0) + w(1),
        OpKind::Neg => w(0) + 1,
        OpKind::Shl(k) => w(0) + k as usize,
    }
}

fn adjust_width<R: Rng + ?Sized>(rng: &mut R, config: &GenConfig, natural: usize) -> usize {
    let natural = natural.max(1);
    if rng.gen_bool(config.p_truncate.clamp(0.0, 1.0)) && natural > 1 {
        rng.gen_range(1..natural)
    } else if rng.gen_bool(config.p_redundant.clamp(0.0, 1.0)) {
        (natural + rng.gen_range(1..=config.max_redundancy.max(1))).min(config.max_width)
    } else {
        natural.min(config.max_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_graphs_validate_and_evaluate() {
        let mut rng = StdRng::seed_from_u64(42);
        for seed in 0..30 {
            let config = GenConfig {
                num_ops: 5 + (seed % 20),
                num_inputs: 2 + seed % 4,
                ..GenConfig::default()
            };
            let g = random_dfg(&mut rng, &config);
            g.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let inputs = random_inputs(&g, &mut rng);
            g.evaluate(&inputs).unwrap();
            assert!(!g.outputs().is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = GenConfig::default();
        let g1 = random_dfg(&mut StdRng::seed_from_u64(9), &config);
        let g2 = random_dfg(&mut StdRng::seed_from_u64(9), &config);
        assert_eq!(g1.num_nodes(), g2.num_nodes());
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(g1.to_dot(), g2.to_dot());
    }

    #[test]
    fn width_cap_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = GenConfig { max_width: 12, num_ops: 40, ..GenConfig::default() };
        let g = random_dfg(&mut rng, &config);
        for n in g.node_ids() {
            assert!(g.node(n).width() <= 12);
        }
    }
}
