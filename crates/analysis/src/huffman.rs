//! Huffman rebalancing of information-content bounds (Section 5.2).
//!
//! For a cluster whose output is a **sum of constant multiples of input
//! signals** (Observation 5.9), the information-content bound depends on
//! the order the additions are associated in. Theorem 5.10: combining the
//! two smallest bounds first — exactly Huffman's minimum-redundancy rule —
//! yields the tightest bound achievable by any ordering.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dp_bitvec::Signedness;

use crate::Ic;

/// One `c * I` term of a sum-of-constant-multiples expression: `count`
/// addend copies, each with information content `ic`.
///
/// A negated addend (`-3 * x`) is represented by a count of 3 and the
/// signed bound of `-x`, i.e. `⟨i+1, signed⟩` for an unsigned `⟨i, ·⟩`
/// operand — the caller performs that adjustment because it knows the
/// expression structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Term {
    /// How many copies of the addend appear (the constant's magnitude).
    pub count: u64,
    /// Information content of one addend copy.
    pub ic: Ic,
}

impl Term {
    /// Convenience constructor.
    pub fn new(count: u64, ic: Ic) -> Self {
        Term { count, ic }
    }
}

/// Upper bound on the information content of a sum of constant multiples
/// of inputs, using the optimal (Huffman) association order
/// (`Huffman_Rebalancing` in the paper, Theorem 5.10).
///
/// Mixed-signedness terms are first promoted to signed (see `DESIGN.md`);
/// the result signedness is the OR of the term signednesses. Terms with
/// `count == 0` are ignored; an empty term list is the constant zero.
///
/// # Examples
///
/// The paper's Figure 4: a skewed chain over `⟨3,0⟩` inputs gives `⟨7,0⟩`,
/// while the optimal order proves `⟨6,0⟩`:
///
/// ```
/// use dp_analysis::{huffman_bound, naive_skewed_bound, Term, Ic};
/// use dp_bitvec::Signedness::Unsigned;
///
/// let terms: Vec<Term> =
///     (0..5).map(|_| Term::new(1, Ic::new(3, Unsigned))).collect();
/// assert_eq!(huffman_bound(&terms), Ic::new(6, Unsigned));
/// assert_eq!(naive_skewed_bound(&terms), Ic::new(7, Unsigned));
/// ```
pub fn huffman_bound(terms: &[Term]) -> Ic {
    let (values, signed) = widths_of(terms);
    if values.is_empty() {
        return Ic::new(0, Signedness::Unsigned);
    }
    let mut heap: BinaryHeap<Reverse<usize>> = values.into_iter().map(Reverse).collect();
    while heap.len() > 1 {
        let Reverse(min1) = heap.pop().expect("len > 1");
        let Reverse(min2) = heap.pop().expect("len > 1");
        heap.push(Reverse(min1.max(min2) + 1));
    }
    let Reverse(i) = heap.pop().expect("one value remains");
    Ic::new(i, signed)
}

/// The bound produced by the worst (fully skewed, widest-first) chain
/// order: the baseline the first information-content pass effectively uses
/// on a left-leaning source graph. Exposed for the Figure 4 comparison and
/// the ablation benches.
pub fn naive_skewed_bound(terms: &[Term]) -> Ic {
    let (mut values, signed) = widths_of(terms);
    if values.is_empty() {
        return Ic::new(0, Signedness::Unsigned);
    }
    // Accumulate in descending width order: acc = max(acc, next) + 1.
    values.sort_unstable_by(|a, b| b.cmp(a));
    let mut acc = values[0];
    for &v in &values[1..] {
        acc = acc.max(v) + 1;
    }
    Ic::new(acc, signed)
}

/// Expands terms into per-addend widths, promoting everything to signed if
/// any term is signed. Zero-information (`i == 0`) addends drop out.
fn widths_of(terms: &[Term]) -> (Vec<usize>, Signedness) {
    let signed = if terms.iter().any(|t| t.count > 0 && t.ic.t == Signedness::Signed) {
        Signedness::Signed
    } else {
        Signedness::Unsigned
    };
    let mut values = Vec::new();
    for t in terms {
        if t.ic.i == 0 {
            continue; // a constant-zero addend contributes nothing
        }
        let ic = if signed == Signedness::Signed { t.ic.as_signed() } else { t.ic };
        // Cap pathological constants: 2^k copies of width i combine to
        // exactly width i + k, so fold the count analytically.
        let count = t.count;
        if count == 0 {
            continue;
        }
        let whole = count.ilog2();
        let pow = 1u64 << whole;
        // `pow` copies fold to one addend of width i + whole…
        values.push(ic.i + whole as usize);
        // …and the remainder keeps its own copies (count < pow again).
        let mut rest = count - pow;
        while rest > 0 {
            let k = rest.ilog2();
            values.push(ic.i + k as usize);
            rest -= 1u64 << k;
        }
    }
    (values, signed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_bitvec::Signedness::*;

    fn u(i: usize) -> Ic {
        Ic::new(i, Unsigned)
    }

    #[test]
    fn figure4_skewed_vs_balanced() {
        // Five 3-bit unsigned addends (the paper's Figure 4 chain).
        let terms: Vec<Term> = (0..5).map(|_| Term::new(1, u(3))).collect();
        assert_eq!(naive_skewed_bound(&terms), u(7));
        assert_eq!(huffman_bound(&terms), u(6));
    }

    #[test]
    fn huffman_matches_exhaustive_on_small_sets() {
        // Brute-force every association order (as a sequence of pairwise
        // combines over a multiset) and confirm Huffman is minimal.
        fn best_order(values: &mut [usize]) -> usize {
            if values.len() == 1 {
                return values[0];
            }
            let mut best = usize::MAX;
            for i in 0..values.len() {
                for j in 0..values.len() {
                    if i == j {
                        continue;
                    }
                    let (a, b) = (values[i], values[j]);
                    let mut next: Vec<usize> = values
                        .iter()
                        .enumerate()
                        .filter(|&(k, _)| k != i && k != j)
                        .map(|(_, &v)| v)
                        .collect();
                    next.push(a.max(b) + 1);
                    best = best.min(best_order(&mut next));
                }
            }
            best
        }
        for widths in [
            vec![3, 3, 3, 3, 3],
            vec![1, 2, 3, 4, 5],
            vec![8, 1, 1, 1],
            vec![4],
            vec![2, 2, 7],
            vec![5, 5, 5, 1],
        ] {
            let terms: Vec<Term> = widths.iter().map(|&w| Term::new(1, u(w))).collect();
            let mut vals = widths.clone();
            assert_eq!(huffman_bound(&terms).i, best_order(&mut vals), "widths {widths:?}");
        }
    }

    #[test]
    fn constant_multiples_fold_by_powers_of_two() {
        // 4 copies of a 3-bit addend: exactly 3 + 2 bits.
        assert_eq!(huffman_bound(&[Term::new(4, u(3))]), u(5));
        // 5*b = 4*b + b: a 5-bit and a 3-bit addend -> 6 bits.
        assert_eq!(huffman_bound(&[Term::new(5, u(3))]), u(6));
        // Matches the fully expanded computation.
        let expanded: Vec<Term> = (0..5).map(|_| Term::new(1, u(3))).collect();
        assert_eq!(huffman_bound(&expanded), huffman_bound(&[Term::new(5, u(3))]));
    }

    #[test]
    fn signedness_promotion() {
        let terms = [Term::new(1, Ic::new(3, Signed)), Term::new(1, u(3))];
        // Unsigned term promotes to 4 signed; max(3,4)+1 = 5 signed.
        assert_eq!(huffman_bound(&terms), Ic::new(5, Signed));
        let all_unsigned = [Term::new(1, u(3)), Term::new(1, u(3))];
        assert_eq!(huffman_bound(&all_unsigned), u(4));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(huffman_bound(&[]), u(0));
        assert_eq!(huffman_bound(&[Term::new(0, u(5))]), u(0));
        assert_eq!(huffman_bound(&[Term::new(1, u(0))]), u(0));
        assert_eq!(huffman_bound(&[Term::new(1, u(9))]), u(9));
        assert_eq!(naive_skewed_bound(&[]), u(0));
    }

    #[test]
    fn huffman_never_exceeds_skewed() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..200 {
            let terms: Vec<Term> = (0..rng.gen_range(1..8))
                .map(|_| Term::new(rng.gen_range(1..6), u(rng.gen_range(1..10))))
                .collect();
            let h = huffman_bound(&terms);
            let s = naive_skewed_bound(&terms);
            assert!(h.i <= s.i, "{terms:?}: {h} > {s}");
        }
    }
}
