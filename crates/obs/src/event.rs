//! The `dpmc-events/1` stream: event taxonomy, serialization, ordering.
//!
//! A stream is a JSONL document: one header line (`schema`, `level`,
//! `designs`) followed by one line per event, each carrying a global
//! `seq` number and the `design` it belongs to. Events are grouped per
//! design in **slot order** (the order designs were submitted, not the
//! order worker threads finished them), and within a design in
//! collection order: flow begin, spans, rounds, op-kind costs, QoR,
//! degradations, trace decisions, faults. That makes the whole document
//! a pure function of (designs, level) — plus wall-time fields at
//! [`Level::Full`], which every determinism comparison strips.

use dp_analysis::{TransformReport, KIND_NAMES, NUM_KINDS};
use dp_metrics::{alloc_probe, AllocStats, Json, Level, Recorder};
use dp_trace::TraceLog;

/// Stream schema identifier, bumped on any incompatible layout change.
pub const SCHEMA: &str = "dpmc-events/1";

/// One telemetry event. Field order in serialized form matches the
/// variant declaration order here.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A flow over one design began under the named merge strategy.
    Flow {
        /// Strategy display name (`no-merge`/`old-merge`/`new-merge`).
        strategy: String,
    },
    /// One finished recorder span.
    Span {
        /// Span name as recorded.
        name: String,
        /// Nesting depth (0 = root).
        depth: usize,
        /// Elapsed microseconds; `None` below [`Level::Full`].
        us: Option<u128>,
        /// Allocation deltas; `None` unless full telemetry with a probe.
        alloc: Option<AllocStats>,
    },
    /// One width-pipeline fixpoint round's counters.
    Round {
        /// 1-based round number.
        round: usize,
        /// Net bit-width change this round (negative = shrank).
        width_delta_bits: i64,
        /// Worklist insertions this round.
        worklist_pushes: usize,
        /// Analysis recomputations this round.
        ports_visited: usize,
        /// Recomputations avoided versus a full sweep.
        ports_skipped: usize,
    },
    /// Aggregate analysis cost for one node-kind bucket.
    OpKind {
        /// Bucket name (see [`dp_analysis::KIND_NAMES`]).
        kind: &'static str,
        /// Exact visits across all rounds.
        visits: u64,
        /// Sampled cost estimate; `None` below [`Level::Full`] or when
        /// nothing was sampled for this bucket.
        est_ns_per_visit: Option<u64>,
    },
    /// The flow's QoR metrics document (always level-invariant).
    Qor {
        /// The `FlowMetrics::to_json` document.
        metrics: Json,
    },
    /// One decision-provenance event from the trace log.
    Trace {
        /// Event index within its design's log.
        id: usize,
        /// Causal parent index, if any.
        parent: Option<usize>,
        /// Stable rule tag (`RP-CLAMP`, `IC-PRUNE`, `FALLBACK-*`, …).
        rule: &'static str,
        /// Subject (`n<i>` or `e<i>`).
        subject: String,
        /// Value before the decision.
        before: usize,
        /// Value after.
        after: usize,
    },
    /// One degradation step taken by the guarded flow driver.
    Degrade {
        /// Stage that degraded (`widths`, `clustering`, `synthesis`).
        stage: String,
        /// Why the stage's primary path was abandoned.
        reason: String,
        /// The `FALLBACK-*` tag of the fallback taken.
        fallback: String,
    },
    /// One injected-fault case outcome from `dpmc faultcheck`.
    Fault {
        /// Fault class name.
        class: String,
        /// Injection seed.
        seed: u64,
        /// What was corrupted, when the class applied to the design.
        injected: Option<String>,
        /// Outcome label (`detected`, `degraded`, …).
        outcome: String,
        /// Human-readable outcome detail.
        detail: String,
    },
}

impl Event {
    /// The event's type tag, the `"ev"` field of its serialized line.
    pub fn tag(&self) -> &'static str {
        match self {
            Event::Flow { .. } => "flow",
            Event::Span { .. } => "span",
            Event::Round { .. } => "round",
            Event::OpKind { .. } => "op_kind",
            Event::Qor { .. } => "qor",
            Event::Trace { .. } => "trace",
            Event::Degrade { .. } => "degrade",
            Event::Fault { .. } => "fault",
        }
    }

    /// Serializes the event as one stream line object.
    fn to_json(&self, seq: usize, design: &str) -> Json {
        let doc = Json::obj().field("seq", seq).field("design", design).field("ev", self.tag());
        match self {
            Event::Flow { strategy } => doc.field("strategy", strategy.as_str()),
            Event::Span { name, depth, us, alloc } => {
                let mut d = doc.field("name", name.as_str()).field("depth", *depth);
                if let Some(us) = us {
                    d = d.field("us", *us);
                }
                if let Some(a) = alloc {
                    d = d
                        .field("alloc_bytes", a.alloc_bytes)
                        .field("alloc_count", a.alloc_count)
                        .field("peak_live_bytes", a.peak_live_bytes);
                }
                d
            }
            Event::Round {
                round,
                width_delta_bits,
                worklist_pushes,
                ports_visited,
                ports_skipped,
            } => doc
                .field("round", *round)
                .field("width_delta_bits", *width_delta_bits)
                .field("worklist_pushes", *worklist_pushes)
                .field("ports_visited", *ports_visited)
                .field("ports_skipped", *ports_skipped),
            Event::OpKind { kind, visits, est_ns_per_visit } => {
                let d = doc.field("kind", *kind).field("visits", *visits);
                match est_ns_per_visit {
                    Some(ns) => d.field("est_ns_per_visit", *ns),
                    None => d,
                }
            }
            Event::Qor { metrics } => doc.field("metrics", metrics.clone()),
            Event::Trace { id, parent, rule, subject, before, after } => {
                let d = doc.field("id", *id);
                let d = match parent {
                    Some(p) => d.field("parent", *p),
                    None => d,
                };
                d.field("rule", *rule)
                    .field("subject", subject.as_str())
                    .field("before", *before)
                    .field("after", *after)
            }
            Event::Degrade { stage, reason, fallback } => doc
                .field("stage", stage.as_str())
                .field("reason", reason.as_str())
                .field("fallback", fallback.as_str()),
            Event::Fault { class, seed, injected, outcome, detail } => {
                let d = doc.field("class", class.as_str()).field("seed", *seed);
                let d = match injected {
                    Some(inj) => d.field("injected", inj.as_str()),
                    None => d,
                };
                d.field("outcome", outcome.as_str()).field("detail", detail.as_str())
            }
        }
    }
}

/// All events collected for one design, in collection order. Built on
/// the worker thread that ran the design; merged in slot order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DesignEvents {
    /// The design's name.
    pub design: String,
    /// Its events.
    pub events: Vec<Event>,
}

impl DesignEvents {
    /// An empty stream for `design`.
    pub fn new(design: impl Into<String>) -> DesignEvents {
        DesignEvents { design: design.into(), events: Vec::new() }
    }
}

/// Span events from a recorder, gated by `level`: names/depths always,
/// `us` only at [`Level::Full`], allocation deltas only at `Full` with a
/// probe installed (a fixed per-process property).
pub fn span_events(rec: &Recorder, level: Level) -> Vec<Event> {
    let full = level == Level::Full;
    let with_alloc = full && alloc_probe().is_some();
    rec.records()
        .iter()
        .map(|r| Event::Span {
            name: r.name().to_string(),
            depth: r.depth(),
            us: full.then(|| r.elapsed().as_micros()),
            alloc: with_alloc.then(|| r.alloc()),
        })
        .collect()
}

/// Trace events from a decision log. Level-invariant by contract: the
/// same design must yield the same sequence at every level.
pub fn trace_events(tr: &TraceLog) -> Vec<Event> {
    tr.events()
        .iter()
        .map(|e| Event::Trace {
            id: e.id.index(),
            parent: e.parent.map(|p| p.index()),
            rule: e.rule.tag(),
            subject: e.subject.to_string(),
            before: e.before,
            after: e.after,
        })
        .collect()
}

/// Per-round counter events from a width-pipeline report. The counter
/// names are exactly the `FlowMetrics` totals they sum to
/// (`worklist_pushes`, `ports_visited`, `ports_skipped`) — one naming
/// scheme across rounds, metrics, and the bench schema.
pub fn round_events(report: &TransformReport) -> Vec<Event> {
    report
        .history
        .iter()
        .enumerate()
        .map(|(i, r)| Event::Round {
            round: i + 1,
            width_delta_bits: r.width_delta_bits,
            worklist_pushes: r.worklist_pushes,
            ports_visited: r.ports_visited,
            ports_skipped: r.ports_skipped,
        })
        .collect()
}

/// Per-op-kind cost events from a report's summed kind counts: one
/// event per bucket that was visited at all, in [`KIND_NAMES`] order.
/// The nondeterministic `est_ns_per_visit` estimate is included only at
/// [`Level::Full`].
pub fn kind_events(report: &TransformReport, level: Level) -> Vec<Event> {
    let counts = report.kind_counts();
    (0..NUM_KINDS)
        .filter(|&k| counts.visits[k] > 0)
        .map(|k| Event::OpKind {
            kind: KIND_NAMES[k],
            visits: counts.visits[k],
            est_ns_per_visit: if level == Level::Full { counts.est_ns_per_visit(k) } else { None },
        })
        .collect()
}

/// A degradation-step event (guarded flow driver fallbacks).
pub fn degrade_event(stage: &str, reason: &str, fallback: &str) -> Event {
    Event::Degrade {
        stage: stage.to_string(),
        reason: reason.to_string(),
        fallback: fallback.to_string(),
    }
}

/// A fault-case outcome event (`dpmc faultcheck`).
pub fn fault_event(
    class: &str,
    seed: u64,
    injected: Option<&str>,
    outcome: &str,
    detail: &str,
) -> Event {
    Event::Fault {
        class: class.to_string(),
        seed,
        injected: injected.map(str::to_string),
        outcome: outcome.to_string(),
        detail: detail.to_string(),
    }
}

/// Renders a complete stream: header line, then every design's events
/// in slot order with a global monotonically increasing `seq`.
pub fn render_stream(level: Level, designs: &[DesignEvents]) -> String {
    let mut out = String::new();
    let header = Json::obj()
        .field("schema", SCHEMA)
        .field("level", level.name())
        .field("designs", designs.len());
    out.push_str(&header.render());
    out.push('\n');
    let mut seq = 0usize;
    for d in designs {
        for e in &d.events {
            out.push_str(&e.to_json(seq, &d.design).render());
            out.push('\n');
            seq += 1;
        }
    }
    out
}

/// Summary of a validated stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSummary {
    /// Schema string from the header (always [`SCHEMA`]).
    pub schema: String,
    /// Telemetry level the stream was recorded at.
    pub level: String,
    /// Designs announced by the header.
    pub designs: usize,
    /// Event lines in the stream.
    pub events: usize,
}

/// Validates a stream document: header schema/level, one JSON object
/// per line, `seq` dense from 0, every line carrying `design` and a
/// known `ev` tag.
pub fn validate_stream(text: &str) -> Result<StreamSummary, String> {
    let mut lines = text.lines().enumerate();
    let (_, header_line) = lines.next().ok_or_else(|| "empty stream".to_string())?;
    let header = Json::parse(header_line).map_err(|e| format!("header: {e}"))?;
    let schema = header
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| "header missing schema".to_string())?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?} != {SCHEMA:?}"));
    }
    let level = header
        .get("level")
        .and_then(Json::as_str)
        .ok_or_else(|| "header missing level".to_string())?;
    if Level::parse(level).is_none() {
        return Err(format!("unknown level {level:?}"));
    }
    let designs = header
        .get("designs")
        .and_then(Json::as_i64)
        .ok_or_else(|| "header missing designs".to_string())?;
    const TAGS: [&str; 8] =
        ["flow", "span", "round", "op_kind", "qor", "trace", "degrade", "fault"];
    let mut events = 0usize;
    for (lineno, line) in lines {
        if line.is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let seq = doc
            .get("seq")
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("line {}: missing seq", lineno + 1))?;
        if seq != events as i64 {
            return Err(format!("line {}: seq {seq}, expected {events}", lineno + 1));
        }
        if doc.get("design").and_then(Json::as_str).is_none() {
            return Err(format!("line {}: missing design", lineno + 1));
        }
        let ev = doc
            .get("ev")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing ev", lineno + 1))?;
        if !TAGS.contains(&ev) {
            return Err(format!("line {}: unknown ev {ev:?}", lineno + 1));
        }
        events += 1;
    }
    Ok(StreamSummary {
        schema: schema.to_string(),
        level: level.to_string(),
        designs: designs as usize,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream(level: Level) -> String {
        let mut d = DesignEvents::new("fig3");
        d.events.push(Event::Flow { strategy: "new-merge".to_string() });
        d.events.push(Event::Span {
            name: "optimize_widths".to_string(),
            depth: 0,
            us: (level == Level::Full).then_some(42),
            alloc: None,
        });
        d.events.push(Event::Round {
            round: 1,
            width_delta_bits: -12,
            worklist_pushes: 0,
            ports_visited: 30,
            ports_skipped: 0,
        });
        d.events.push(Event::OpKind { kind: "add", visits: 7, est_ns_per_visit: None });
        d.events.push(Event::Qor { metrics: Json::obj().field("gates", 10usize) });
        d.events.push(Event::Trace {
            id: 0,
            parent: None,
            rule: "RP-CLAMP",
            subject: "n3".to_string(),
            before: 9,
            after: 5,
        });
        d.events.push(degrade_event("widths", "round cap", "FALLBACK-RP-ONLY"));
        d.events.push(fault_event("ic-over", 1, Some("n2"), "detected", "caught by audit"));
        render_stream(level, &[d])
    }

    #[test]
    fn stream_round_trips_through_validate() {
        let s = sample_stream(Level::Counters);
        let summary = validate_stream(&s).expect("valid stream");
        assert_eq!(summary.schema, SCHEMA);
        assert_eq!(summary.level, "counters");
        assert_eq!(summary.designs, 1);
        assert_eq!(summary.events, 8);
    }

    #[test]
    fn counters_stream_is_byte_identical_and_us_free() {
        let a = sample_stream(Level::Counters);
        let b = sample_stream(Level::Counters);
        assert_eq!(a, b);
        assert!(!a.contains("\"us\""));
        let full = sample_stream(Level::Full);
        assert!(full.contains("\"us\":42"));
    }

    #[test]
    fn seq_is_dense_and_global_across_designs() {
        let mk = |name: &str| {
            let mut d = DesignEvents::new(name);
            d.events.push(Event::Flow { strategy: "new-merge".to_string() });
            d
        };
        let s = render_stream(Level::Counters, &[mk("a"), mk("b")]);
        assert!(s.contains("\"seq\":0,\"design\":\"a\""));
        assert!(s.contains("\"seq\":1,\"design\":\"b\""));
        validate_stream(&s).expect("dense seq");
    }

    #[test]
    fn validate_rejects_bad_streams() {
        assert!(validate_stream("").is_err());
        assert!(
            validate_stream("{\"schema\":\"other/9\",\"level\":\"full\",\"designs\":0}").is_err()
        );
        let mut s = sample_stream(Level::Counters);
        s.push_str("{\"seq\":99,\"design\":\"x\",\"ev\":\"flow\"}\n");
        assert!(validate_stream(&s).is_err(), "non-dense seq rejected");
    }
}
